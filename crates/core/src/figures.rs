//! The exact experiment grids of Figs. 3–7 of the paper, parameterised over
//! topology and routing.
//!
//! Every figure is a set of independent simulation points; [`Figure::run`]
//! executes them in parallel (deterministically, each point owns its seed) and
//! returns a [`FigureResult`] whose text rendering reproduces the series the
//! paper plots. By default each figure runs on its paper topology (a k-ary
//! n-cube torus) comparing deterministic against adaptive Software-Based
//! routing; [`Figure::run_with`] regenerates the same grid on any
//! [`TopologySpec`] (meshes, hypercubes, mixed-radix shapes) and any set of
//! [`RoutingChoice`]s — the scenario-diversity axis of the evaluation.
//!
//! Individual points that cannot run (for example a fault region that does
//! not fit the requested shape) are reported as typed failures on the result
//! instead of aborting the figure.
//!
//! Three scales are provided:
//!
//! * [`Scale::Smoke`] — a tiny grid for CI smoke runs and tests (seconds);
//! * [`Scale::Quick`] — a reduced message budget and coarser rate grid, meant
//!   for laptops and CI (minutes);
//! * [`Scale::Paper`] — the paper's methodology (100,000 messages per point,
//!   of which the first 10,000 are discarded) and a denser grid.

use crate::experiment::{ExperimentConfig, ExperimentOutcome, RoutingChoice};
use crate::pool::{run_pool, Jobs};
use crate::results::{CurveResult, FigureResult, Metric, PanelResult, PointFailure, PointResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use torus_faults::{FaultRegion, FaultScenario, RegionShape};
use torus_routing::RoutingAlgorithm;
use torus_topology::{Network, TopologySpec};

/// Measurement scale of a figure run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny budget and grid: figure smoke tests finish in seconds.
    Smoke,
    /// Reduced budget: quick to run, qualitatively identical curves.
    Quick,
    /// The paper's full budget (10,000 warm-up + 90,000 measured messages per
    /// point) and denser sweeps.
    Paper,
}

impl Scale {
    fn warmup(self) -> u64 {
        match self {
            Scale::Smoke => 100,
            Scale::Quick => 1_000,
            Scale::Paper => 10_000,
        }
    }

    fn measured(self) -> u64 {
        match self {
            Scale::Smoke => 500,
            Scale::Quick => 5_000,
            Scale::Paper => 90_000,
        }
    }

    fn max_cycles(self, num_nodes: usize) -> u64 {
        match self {
            Scale::Smoke => 15_000,
            // Large enough to reach steady state well past saturation, small
            // enough that saturated points terminate promptly.
            Scale::Quick => {
                if num_nodes > 256 {
                    40_000
                } else {
                    60_000
                }
            }
            Scale::Paper => 1_000_000,
        }
    }

    fn rate_points(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Quick => 5,
            Scale::Paper => 8,
        }
    }

    fn fault_step(self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 2,
            Scale::Paper => 1,
        }
    }

    /// Random fault placements averaged per Fig. 6 cell.
    fn fig6_reps(self) -> u64 {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Paper => 5,
        }
    }

    /// Identifier ("smoke" / "quick" / "paper").
    pub fn id(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Parses an identifier.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "quick" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale '{other}' (use smoke|quick|paper)")),
        }
    }
}

/// How to run a figure: the scale plus optional topology and routing
/// overrides and the worker-thread count. The default options reproduce the
/// paper bit-identically; `jobs` never changes results, only wall clock
/// (every point owns its seed and the pool reassembles results into grid
/// order).
#[derive(Clone, Debug, PartialEq)]
pub struct FigureOptions {
    /// Measurement scale.
    pub scale: Scale,
    /// Topology override (`None` = the figure's paper topology).
    pub topology: Option<TopologySpec>,
    /// Routing comparison set override (`None` = deterministic vs adaptive
    /// Software-Based routing, the paper's comparison).
    pub routings: Option<Vec<RoutingChoice>>,
    /// Worker threads the figure's points are fanned out over (default:
    /// available parallelism).
    pub jobs: Jobs,
}

impl FigureOptions {
    /// Paper-default options at the given scale.
    pub fn new(scale: Scale) -> Self {
        FigureOptions {
            scale,
            topology: None,
            routings: None,
            jobs: Jobs::Auto,
        }
    }

    /// Overrides the topology the figure is measured on.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Restricts the figure to a single routing algorithm.
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routings = Some(vec![routing]);
        self
    }

    /// Overrides the full routing comparison set.
    pub fn with_routings(mut self, routings: Vec<RoutingChoice>) -> Self {
        self.routings = Some(routings);
        self
    }

    /// Sets the worker-thread count the figure's points run on.
    pub fn with_jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Errors that prevent a figure from running at all (individual point
/// failures are reported on the [`FigureResult`] instead).
#[derive(Clone, Debug)]
pub enum FigureError {
    /// The requested topology could not be built.
    Topology(torus_topology::NetworkError),
    /// A requested routing algorithm cannot run on the requested topology
    /// (for example the turn model on a wrapped dimension).
    UnsupportedRouting {
        /// The rejected routing choice.
        routing: RoutingChoice,
        /// The topology it was requested on.
        topology: TopologySpec,
        /// The typed rejection from the routing subsystem.
        error: torus_routing::RoutingTopologyError,
    },
    /// The routing comparison set was empty.
    NoRoutings,
    /// The figure places clustered fault regions, which are coordinate-plane
    /// concepts of direct grids; an indirect topology cannot host them.
    RegionsNeedGrid {
        /// The non-grid topology the figure was requested on.
        topology: TopologySpec,
    },
}

impl fmt::Display for FigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FigureError::Topology(e) => write!(f, "topology error: {e}"),
            FigureError::UnsupportedRouting {
                routing,
                topology,
                error,
            } => write!(
                f,
                "routing '{}' cannot run on {}: {error}",
                routing.label(),
                topology.label()
            ),
            FigureError::NoRoutings => write!(f, "the routing comparison set is empty"),
            FigureError::RegionsNeedGrid { topology } => write!(
                f,
                "fault regions are coordinate-plane concepts of direct grids; \
                 {} is an indirect topology",
                topology.label()
            ),
        }
    }
}

impl std::error::Error for FigureError {}

/// The figures of the paper's evaluation section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 3 — mean latency vs traffic rate, 8-ary 2-cube, deterministic and
    /// adaptive routing, M = 32/64, V = 4/6/10, nf = 0/3/5 random node faults.
    Fig3,
    /// Fig. 4 — mean latency vs traffic rate, 8-ary 3-cube, M = 32/64,
    /// V = 4/6/10, nf = 0/12 random node faults.
    Fig4,
    /// Fig. 5 — mean latency vs traffic rate for convex and concave fault
    /// regions, 8-ary 2-cube, M = 32, V = 10.
    Fig5,
    /// Fig. 6 — throughput vs number of random node faults, 16-ary 2-cube,
    /// M = 32, V = 6.
    Fig6,
    /// Fig. 7 — number of messages queued (absorbed) vs number of random node
    /// faults, 8-ary 3-cube, M = 32, V = 10, generation rates "70" and "100".
    Fig7,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 5] = [
        Figure::Fig3,
        Figure::Fig4,
        Figure::Fig5,
        Figure::Fig6,
        Figure::Fig7,
    ];

    /// Identifier ("fig3" ... "fig7").
    pub fn id(&self) -> &'static str {
        match self {
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
        }
    }

    /// Parses an identifier.
    pub fn from_id(id: &str) -> Option<Figure> {
        Figure::ALL.into_iter().find(|f| f.id() == id)
    }

    /// Title mirroring the paper's caption.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Fig3 => {
                "Mean message latency vs traffic rate, 8-ary 2-cube, deterministic/adaptive, M=32/64, V=4/6/10, nf=0/3/5"
            }
            Figure::Fig4 => {
                "Mean message latency vs traffic rate, 8-ary 3-cube, deterministic/adaptive, M=32/64, V=4/6/10, nf=0/12"
            }
            Figure::Fig5 => {
                "Mean message latency vs traffic rate for convex/concave fault regions, 8-ary 2-cube, M=32, V=10"
            }
            Figure::Fig6 => {
                "Throughput vs number of random faulty nodes, 16-ary 2-cube, M=32, V=6"
            }
            Figure::Fig7 => {
                "Messages queued vs number of random faulty nodes, 8-ary 3-cube, M=32, V=10, generation rates 70/100"
            }
        }
    }

    /// The topology the paper measures this figure on.
    pub fn default_topology(&self) -> TopologySpec {
        match self {
            Figure::Fig3 | Figure::Fig5 => TopologySpec::torus(8, 2),
            Figure::Fig4 | Figure::Fig7 => TopologySpec::torus(8, 3),
            Figure::Fig6 => TopologySpec::torus(16, 2),
        }
    }

    /// Runs the whole figure at the given scale on its paper topology.
    pub fn run(&self, scale: Scale) -> Result<FigureResult, FigureError> {
        self.run_with(&FigureOptions::new(scale))
    }

    /// Runs the figure with topology/routing overrides, fanning the grid's
    /// points over `opts.jobs` worker threads.
    pub fn run_with(&self, opts: &FigureOptions) -> Result<FigureResult, FigureError> {
        Ok(self.plan(opts)?.execute(opts.jobs))
    }

    /// The experiment configurations the figure would run, in execution
    /// order. Exposed so pinning tests (and external tooling) can check the
    /// exact parameter grid without paying for the simulations.
    pub fn point_configs(
        &self,
        opts: &FigureOptions,
    ) -> Result<Vec<ExperimentConfig>, FigureError> {
        Ok(self
            .plan(opts)?
            .tagged
            .into_iter()
            .map(|(_, _, _, cfg)| cfg)
            .collect())
    }

    /// Panel titles and curve labels of the figure grid for the given
    /// options, without running any simulation. Together with
    /// [`Figure::point_configs`] this exposes the whole figure grid, which
    /// pinning tests digest to guarantee the default (paper) grids never
    /// drift.
    pub fn grid_labels(
        &self,
        opts: &FigureOptions,
    ) -> Result<Vec<(String, Vec<String>)>, FigureError> {
        Ok(self.plan(opts)?.panels_meta)
    }

    /// Builds the figure's full point grid for the given options.
    fn plan(&self, opts: &FigureOptions) -> Result<FigurePlan, FigureError> {
        let topology = opts
            .topology
            .clone()
            .unwrap_or_else(|| self.default_topology());
        let net = topology.build().map_err(FigureError::Topology)?;
        let routings = opts
            .routings
            .clone()
            .unwrap_or_else(|| RoutingChoice::BOTH.to_vec());
        if routings.is_empty() {
            return Err(FigureError::NoRoutings);
        }
        // Reject routing/topology mismatches up front with one typed error
        // instead of one identical failure per point.
        for &routing in &routings {
            routing.algorithm().supported_on(&net).map_err(|error| {
                FigureError::UnsupportedRouting {
                    routing,
                    topology: topology.clone(),
                    error,
                }
            })?;
        }
        Ok(match self {
            Figure::Fig3 => latency_figure(
                opts.scale,
                "fig3",
                self.title(),
                &topology,
                &routings,
                &[0, 3, 5],
            ),
            Figure::Fig4 => latency_figure(
                opts.scale,
                "fig4",
                self.title(),
                &topology,
                &routings,
                &[0, 12],
            ),
            Figure::Fig5 => {
                let Some(grid) = net.grid() else {
                    return Err(FigureError::RegionsNeedGrid { topology });
                };
                fig5(opts.scale, &topology, grid, &routings)
            }
            Figure::Fig6 => fig6(opts.scale, &topology, &routings),
            Figure::Fig7 => fig7(opts.scale, &topology, &routings),
        })
    }
}

/// A fully built figure grid: every experiment configuration tagged with its
/// (panel, curve, x) coordinates, plus the panel/curve metadata needed to
/// assemble the result. Executing the plan is the only part that simulates.
struct FigurePlan {
    id: String,
    title: String,
    metric: Metric,
    x_label: String,
    /// (panel index, curve index, x value, configuration). Several entries
    /// may share one (panel, curve, x) cell; their reports are averaged
    /// (Fig. 6 uses this to average over random fault placements).
    tagged: Vec<(usize, usize, f64, ExperimentConfig)>,
    /// Per panel: title and curve labels.
    panels_meta: Vec<(String, Vec<String>)>,
}

impl FigurePlan {
    /// Runs every point on the work-stealing pool and assembles the figure,
    /// collecting failed points instead of aborting. The pool streams
    /// per-point results back in completion order and reassembles them into
    /// grid-enumeration order, so the assembled figure — failed points
    /// included — is bit-identical at any `jobs` value.
    fn execute(self, jobs: Jobs) -> FigureResult {
        let outcomes = run_pool(self.tagged, jobs, |(panel, curve, x, cfg)| {
            (*panel, *curve, *x, cfg.run())
        });
        let mut panels: Vec<PanelResult> = self
            .panels_meta
            .into_iter()
            .map(|(ptitle, curve_labels)| PanelResult {
                title: ptitle,
                x_label: self.x_label.clone(),
                metric: self.metric,
                curves: curve_labels
                    .into_iter()
                    .map(|label| CurveResult {
                        label,
                        points: Vec::new(),
                    })
                    .collect(),
            })
            .collect();
        // Group outcomes into (panel, curve, x) cells, averaging repetitions.
        // Failures carry their grid-enumeration index and are sorted by it
        // before assembly: the pool already returns outcomes in input order,
        // but the ordering of the failure list is part of the determinism
        // guarantee (rendered text and CSV are digest-pinned across `--jobs`
        // values), so it must not silently depend on collection order.
        let mut order: Vec<(usize, usize, f64)> = Vec::new();
        let mut cells: HashMap<(usize, usize, u64), Vec<ExperimentOutcome>> = HashMap::new();
        let mut failures: Vec<(usize, PointFailure)> = Vec::new();
        for (grid_idx, (panel, curve, x, outcome)) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(o) => {
                    let key = (panel, curve, x.to_bits());
                    if !cells.contains_key(&key) {
                        order.push((panel, curve, x));
                    }
                    cells.entry(key).or_default().push(o);
                }
                Err(e) => failures.push((
                    grid_idx,
                    PointFailure {
                        panel: panels[panel].title.clone(),
                        curve: panels[panel].curves[curve].label.clone(),
                        x,
                        error: e.to_string(),
                    },
                )),
            }
        }
        failures.sort_by_key(|(grid_idx, _)| *grid_idx);
        let failures: Vec<PointFailure> = failures.into_iter().map(|(_, f)| f).collect();
        for (panel, curve, x) in order {
            let cell = &cells[&(panel, curve, x.to_bits())];
            let reports: Vec<torus_metrics::SimulationReport> =
                cell.iter().map(|o| o.report.clone()).collect();
            panels[panel].curves[curve].points.push(PointResult {
                x,
                report: average_reports(&reports),
                saturated: cell.iter().all(|o| o.hit_max_cycles),
            });
        }
        for panel in &mut panels {
            for curve in &mut panel.curves {
                curve.points.sort_by(|a, b| a.x.total_cmp(&b.x));
            }
        }
        FigureResult {
            id: self.id,
            title: self.title,
            panels,
            failures,
        }
    }
}

/// Cycle cap for one experiment point: the scale's base cap, extended so that
/// a lightly loaded (far-from-saturation) point always has enough cycles to
/// generate and deliver its whole message budget — otherwise the lowest-rate
/// points would be mislabelled as saturated simply because the cycle budget
/// expired before the message budget.
fn budgeted_max_cycles(scale: Scale, cfg: &ExperimentConfig) -> u64 {
    let generation_cycles =
        (cfg.warmup_messages + cfg.measured_messages) as f64 / (cfg.rate * cfg.num_nodes() as f64);
    scale
        .max_cycles(cfg.num_nodes())
        .max((4.0 * generation_cycles).ceil() as u64)
}

/// Per-(routing, V) saturation-aware maximum traffic rate of the sweep grids,
/// chosen to bracket the saturation points visible in the paper's figures.
/// The deterministic turn model shares the e-cube ranges and the adaptive
/// turn model the Duato ranges (mesh saturation sits a little lower, which
/// only makes the top of the grid saturate visibly — exactly what the figure
/// is meant to show).
fn max_rate(routing: RoutingChoice, v: usize) -> f64 {
    use RoutingChoice as R;
    match (routing, v) {
        (R::Deterministic | R::TurnModelDeterministic | R::UpDownDeterministic, 4) => 0.013,
        (R::Deterministic | R::TurnModelDeterministic | R::UpDownDeterministic, 6) => 0.016,
        (R::Deterministic | R::TurnModelDeterministic | R::UpDownDeterministic, _) => 0.019,
        (R::Adaptive | R::TurnModel | R::UpDownAdaptive, 4) => 0.016,
        (R::Adaptive | R::TurnModel | R::UpDownAdaptive, 6) => 0.020,
        (R::Adaptive | R::TurnModel | R::UpDownAdaptive, _) => 0.023,
    }
}

/// Evenly spaced traffic grid from a low load up to `max`.
fn rate_grid(max: f64, points: usize) -> Vec<f64> {
    let start = 0.002;
    (0..points)
        .map(|i| start + (max - start) * i as f64 / (points.saturating_sub(1).max(1)) as f64)
        .collect()
}

/// Deterministic per-point seed derived from the figure id and the point's
/// coordinates, so every figure is reproducible and the two routing flavours
/// of a comparison see the same fault placements (the fault RNG stream is
/// derived from the seed inside `ExperimentConfig::run`, independently of the
/// routing flavour).
fn point_seed(fig: &str, panel: usize, curve: usize, point: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in fig.bytes().chain([panel as u8, curve as u8, point as u8]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The paper's phrasing for a topology in panel titles: tori keep the
/// "k-ary n-cube" wording of the captions, every other shape uses its label.
fn shape_phrase(spec: &TopologySpec) -> String {
    match spec {
        TopologySpec::Torus { radix, dims } => format!("{radix}-ary {dims}-cube"),
        other => other.label(),
    }
}

/// Shared grid for Figs. 3 and 4: mean latency vs traffic rate over panels
/// (routing × V), curves (M × nf).
fn latency_figure(
    scale: Scale,
    id: &str,
    title: &str,
    topology: &TopologySpec,
    routings: &[RoutingChoice],
    fault_counts: &[usize],
) -> FigurePlan {
    let vs = [4usize, 6, 10];
    let ms = [32u32, 64];
    let mut tagged: Vec<(usize, usize, f64, ExperimentConfig)> = Vec::new();
    let mut panels_meta: Vec<(String, Vec<String>)> = Vec::new();
    let mut panel_idx = 0;
    for &routing in routings {
        for &v in &vs {
            let rates = rate_grid(max_rate(routing, v), scale.rate_points());
            let mut curve_labels = Vec::new();
            let mut curve_idx = 0;
            for &m in &ms {
                for &nf in fault_counts {
                    curve_labels.push(format!("M={m}, nf={nf}"));
                    for (pi, &rate) in rates.iter().enumerate() {
                        let faults = if nf == 0 {
                            FaultScenario::None
                        } else {
                            FaultScenario::RandomNodes { count: nf }
                        };
                        let cfg = ExperimentConfig::topology_point(topology.clone(), v, m, rate)
                            .with_routing(routing)
                            .with_faults(faults)
                            .with_seed(point_seed(id, panel_idx, curve_idx, pi))
                            // One fault placement per curve (the paper sweeps
                            // the traffic rate against a fixed set of faults).
                            .with_fault_seed(point_seed(id, panel_idx, curve_idx, 255))
                            .quick(scale.measured(), scale.warmup());
                        let cfg = ExperimentConfig {
                            max_cycles: budgeted_max_cycles(scale, &cfg),
                            ..cfg
                        };
                        tagged.push((panel_idx, curve_idx, rate, cfg));
                    }
                    curve_idx += 1;
                }
            }
            panels_meta.push((
                format!(
                    "{} routing, {}, V={}",
                    capitalise(routing.label()),
                    shape_phrase(topology),
                    v
                ),
                curve_labels,
            ));
            panel_idx += 1;
        }
    }
    FigurePlan {
        id: id.to_string(),
        title: title.to_string(),
        metric: Metric::MeanLatency,
        x_label: "Traffic rate".to_string(),
        tagged,
        panels_meta,
    }
}

/// Picks the Fig. 5 region actually simulated on `net`: the paper's shape
/// unchanged when its centred placement validates, a kind-preserving
/// scaled-down instance when the shape exceeds the network's extents (open
/// dimensions cap the region at radix − 1, so a scaled region never spans a
/// whole mesh edge; wrapped dimensions allow the full ring), or the
/// original shape when no structurally meaningful instance fits — the point
/// then records its placement failure exactly as before. Returns the shape
/// and whether it was scaled.
fn fig5_shape(net: &Network, shape: RegionShape) -> (RegionShape, bool) {
    let centred_fits = |s: RegionShape| {
        let (w, h) = s.bounding_box();
        let mut anchor = vec![0u16; net.dims()];
        anchor[0] = net.radix(0).saturating_sub(w) / 2;
        anchor[1] = net.radix(1).saturating_sub(h) / 2;
        FaultRegion::in_default_plane(net, s, &anchor).is_ok()
    };
    if centred_fits(shape) {
        return (shape, false);
    }
    let cap = |dim: usize| {
        let k = net.radix(dim);
        if net.wraps(dim) {
            k
        } else {
            k.saturating_sub(1)
        }
    };
    match shape.scaled_to_fit(cap(0), cap(1)) {
        Some(scaled) if centred_fits(scaled) => (scaled, true),
        _ => (shape, false),
    }
}

/// Fig. 5: latency vs traffic rate for the five fault-region shapes, both
/// routing flavours, M = 32, V = 10.
fn fig5(
    scale: Scale,
    topology: &TopologySpec,
    net: &Network,
    routings: &[RoutingChoice],
) -> FigurePlan {
    let v = 10;
    let m = 32;
    let mut tagged = Vec::new();
    let mut curve_labels = Vec::new();
    let mut curve_idx = 0;
    for &routing in routings {
        for (paper_shape, shape_label) in RegionShape::paper_fig5_regions() {
            let (shape, scaled) = fig5_shape(net, paper_shape);
            curve_labels.push(format!(
                "{}, nf={}, {}{}",
                capitalise(routing.label()),
                shape.node_count(),
                shape_label,
                if scaled { " (scaled)" } else { "" }
            ));
            let rates = rate_grid(max_rate(routing, v), scale.rate_points());
            for (pi, &rate) in rates.iter().enumerate() {
                let cfg = ExperimentConfig::topology_point(topology.clone(), v, m, rate)
                    .with_routing(routing)
                    .with_faults(FaultScenario::centered_region(net, shape))
                    .with_seed(point_seed("fig5", 0, curve_idx, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((0usize, curve_idx, rate, cfg));
            }
            curve_idx += 1;
        }
    }
    let panels_meta = vec![(
        format!(
            "{}, M={m}, V={v}, convex and concave fault regions",
            shape_phrase(topology)
        ),
        curve_labels,
    )];
    FigurePlan {
        id: "fig5".to_string(),
        title: Figure::Fig5.title().to_string(),
        metric: Metric::MeanLatency,
        x_label: "Traffic rate".to_string(),
        tagged,
        panels_meta,
    }
}

/// Fig. 6: throughput vs number of random faulty nodes, M = 32, V = 6,
/// measured at a fixed offered load above the deterministic saturation point,
/// averaged over several random placements per fault count.
fn fig6(scale: Scale, topology: &TopologySpec, routings: &[RoutingChoice]) -> FigurePlan {
    let v = 6;
    let m = 32;
    let offered = 0.012;
    let reps = scale.fig6_reps();
    let fault_counts: Vec<usize> = (0..=10).step_by(scale.fault_step()).collect();
    let mut tagged: Vec<(usize, usize, f64, ExperimentConfig)> = Vec::new();
    let mut curve_labels = Vec::new();
    for (curve_idx, &routing) in routings.iter().enumerate() {
        curve_labels.push(routing.label().to_string());
        for (pi, &nf) in fault_counts.iter().enumerate() {
            for rep in 0..reps {
                let faults = if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                };
                let cfg = ExperimentConfig::topology_point(topology.clone(), v, m, offered)
                    .with_routing(routing)
                    .with_faults(faults)
                    .with_seed(point_seed("fig6", rep as usize, curve_idx, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((0usize, curve_idx, nf as f64, cfg));
            }
        }
    }
    let panels_meta = vec![(
        format!(
            "{}, M={m}, V={v}, offered load {offered}",
            shape_phrase(topology)
        ),
        curve_labels,
    )];
    FigurePlan {
        id: "fig6".to_string(),
        title: Figure::Fig6.title().to_string(),
        metric: Metric::Throughput,
        x_label: "Number of faulty nodes".to_string(),
        tagged,
        panels_meta,
    }
}

/// Fig. 7: messages queued (absorption events) vs number of random faulty
/// nodes, M = 32, V = 10, for the two generation rates the paper labels "70"
/// and "100" (interpreted as mean inter-arrival times in cycles, i.e.
/// λ = 1/70 and 1/100 messages/node/cycle — see DESIGN.md).
fn fig7(scale: Scale, topology: &TopologySpec, routings: &[RoutingChoice]) -> FigurePlan {
    let v = 10;
    let m = 32;
    let rates = [(70u32, 1.0 / 70.0), (100u32, 1.0 / 100.0)];
    let fault_counts: Vec<usize> = (0..=12).step_by(scale.fault_step()).collect();
    let mut tagged = Vec::new();
    let mut curve_labels = Vec::new();
    let mut curve_idx = 0;
    for &routing in routings {
        for &(label, rate) in &rates {
            curve_labels.push(format!(
                "{}, generation rate={}",
                capitalise(routing.label()),
                label
            ));
            for (pi, &nf) in fault_counts.iter().enumerate() {
                let faults = if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                };
                let cfg = ExperimentConfig::topology_point(topology.clone(), v, m, rate)
                    .with_routing(routing)
                    .with_faults(faults)
                    .with_seed(point_seed("fig7", 0, curve_idx, pi))
                    // The same placement of `nf` faults is shared by all four
                    // curves so they are directly comparable at each x.
                    .with_fault_seed(point_seed("fig7-faults", 0, 0, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((0usize, curve_idx, nf as f64, cfg));
            }
            curve_idx += 1;
        }
    }
    let panels_meta = vec![(
        format!("{}, M={m}, V={v}", shape_phrase(topology)),
        curve_labels,
    )];
    FigurePlan {
        id: "fig7".to_string(),
        title: Figure::Fig7.title().to_string(),
        metric: Metric::MessagesQueued,
        x_label: "Number of faulty nodes".to_string(),
        tagged,
        panels_meta,
    }
}

/// Field-wise average of several simulation reports (used by Fig. 6 to average
/// over independent random fault placements; averaging a single report
/// reproduces it bit-identically).
pub fn average_reports(
    reports: &[torus_metrics::SimulationReport],
) -> torus_metrics::SimulationReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len() as f64;
    let mut avg = reports[0].clone();
    let sum_f =
        |f: fn(&torus_metrics::SimulationReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    avg.mean_latency = sum_f(|r| r.mean_latency);
    avg.latency_std_dev = sum_f(|r| r.latency_std_dev);
    avg.latency_ci95 = sum_f(|r| r.latency_ci95);
    avg.mean_network_latency = sum_f(|r| r.mean_network_latency);
    avg.mean_hops = sum_f(|r| r.mean_hops);
    avg.throughput = sum_f(|r| r.throughput);
    avg.flit_throughput = sum_f(|r| r.flit_throughput);
    avg.acceptance_ratio = sum_f(|r| r.acceptance_ratio);
    avg.p50_latency = sum_f(|r| r.p50_latency);
    avg.p99_latency = sum_f(|r| r.p99_latency);
    avg.max_latency = reports.iter().map(|r| r.max_latency).fold(0.0, f64::max);
    avg.cycles = (reports.iter().map(|r| r.cycles).sum::<u64>() as f64 / n) as u64;
    avg.generated_messages =
        (reports.iter().map(|r| r.generated_messages).sum::<u64>() as f64 / n) as u64;
    avg.measured_messages =
        (reports.iter().map(|r| r.measured_messages).sum::<u64>() as f64 / n) as u64;
    avg.delivered_messages =
        (reports.iter().map(|r| r.delivered_messages).sum::<u64>() as f64 / n) as u64;
    avg.in_flight_messages =
        (reports.iter().map(|r| r.in_flight_messages).sum::<u64>() as f64 / n) as u64;
    avg.messages_queued =
        (reports.iter().map(|r| r.messages_queued).sum::<u64>() as f64 / n) as u64;
    avg.messages_queued_measured = (reports
        .iter()
        .map(|r| r.messages_queued_measured)
        .sum::<u64>() as f64
        / n) as u64;
    avg.reinjection_queue_peak = reports
        .iter()
        .map(|r| r.reinjection_queue_peak)
        .max()
        .unwrap_or(0);
    avg
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_regions_scale_to_small_open_meshes() {
        // The 10-node T (5×6 bounding box) exceeds a 5-extent open mesh and
        // is scaled down, keeping its kind within the radix − 1 caps.
        let net = Network::mesh(5, 2).unwrap();
        let (shape, scaled) = fig5_shape(&net, RegionShape::paper_t_10());
        assert!(scaled);
        assert!(matches!(shape, RegionShape::TShape { .. }));
        let (w, h) = shape.bounding_box();
        assert!(w <= 4 && h <= 4, "scaled T is {w}x{h}");
        // The 20-node rect (4×5) fits the same mesh unchanged.
        let (shape, scaled) = fig5_shape(&net, RegionShape::paper_rect_20());
        assert!(!scaled);
        assert_eq!(shape, RegionShape::paper_rect_20());
        // On a hypercube (radix-2 open dims) no instance of any Fig. 5 kind
        // fits; the paper shape is kept so the point records its placement
        // failure exactly as before.
        let hc = Network::hypercube(4).unwrap();
        for (paper, _) in RegionShape::paper_fig5_regions() {
            let (shape, scaled) = fig5_shape(&hc, paper);
            assert!(!scaled);
            assert_eq!(shape, paper);
        }
    }

    #[test]
    fn figure_identifiers() {
        assert_eq!(Figure::Fig3.id(), "fig3");
        assert_eq!(Figure::from_id("fig6"), Some(Figure::Fig6));
        assert_eq!(Figure::from_id("nope"), None);
        assert_eq!(Figure::ALL.len(), 5);
        for f in Figure::ALL {
            assert!(!f.title().is_empty());
        }
    }

    #[test]
    fn scales() {
        assert!(Scale::Paper.measured() > Scale::Quick.measured());
        assert!(Scale::Quick.measured() > Scale::Smoke.measured());
        assert!(Scale::Paper.warmup() > Scale::Quick.warmup());
        assert!(Scale::Paper.rate_points() > Scale::Quick.rate_points());
        assert!(Scale::Quick.max_cycles(512) <= Scale::Quick.max_cycles(64));
        assert!(Scale::Smoke.max_cycles(64) < Scale::Quick.max_cycles(64));
        assert_eq!(Scale::Paper.fault_step(), 1);
        assert_eq!(Scale::Smoke.fig6_reps(), 1);
        for s in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert_eq!(Scale::parse(s.id()), Ok(s));
        }
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn rate_grid_shape() {
        let g = rate_grid(0.012, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.002).abs() < 1e-12);
        assert!((g[4] - 0.012).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn max_rates_ordered_by_adaptivity_and_vcs() {
        for v in [4, 6, 10] {
            assert!(
                max_rate(RoutingChoice::Adaptive, v) > max_rate(RoutingChoice::Deterministic, v)
            );
            assert_eq!(
                max_rate(RoutingChoice::TurnModel, v),
                max_rate(RoutingChoice::Adaptive, v)
            );
            assert_eq!(
                max_rate(RoutingChoice::TurnModelDeterministic, v),
                max_rate(RoutingChoice::Deterministic, v)
            );
            assert_eq!(
                max_rate(RoutingChoice::UpDownDeterministic, v),
                max_rate(RoutingChoice::Deterministic, v)
            );
            assert_eq!(
                max_rate(RoutingChoice::UpDownAdaptive, v),
                max_rate(RoutingChoice::Adaptive, v)
            );
        }
        assert!(
            max_rate(RoutingChoice::Deterministic, 10) > max_rate(RoutingChoice::Deterministic, 4)
        );
    }

    #[test]
    fn point_seeds_are_distinct() {
        let mut seeds = std::collections::HashSet::new();
        for panel in 0..6 {
            for curve in 0..6 {
                for point in 0..8 {
                    seeds.insert(point_seed("fig3", panel, curve, point));
                }
            }
        }
        assert_eq!(seeds.len(), 6 * 6 * 8);
        assert_ne!(point_seed("fig3", 0, 0, 0), point_seed("fig4", 0, 0, 0));
    }

    #[test]
    fn default_topologies_are_the_papers() {
        assert_eq!(Figure::Fig3.default_topology(), TopologySpec::torus(8, 2));
        assert_eq!(Figure::Fig4.default_topology(), TopologySpec::torus(8, 3));
        assert_eq!(Figure::Fig5.default_topology(), TopologySpec::torus(8, 2));
        assert_eq!(Figure::Fig6.default_topology(), TopologySpec::torus(16, 2));
        assert_eq!(Figure::Fig7.default_topology(), TopologySpec::torus(8, 3));
    }

    #[test]
    fn shape_phrase_keeps_the_papers_cube_wording() {
        assert_eq!(shape_phrase(&TopologySpec::torus(8, 2)), "8-ary 2-cube");
        assert_eq!(shape_phrase(&TopologySpec::mesh(8, 2)), "8-ary 2-mesh");
        assert_eq!(shape_phrase(&TopologySpec::hypercube(6)), "6-hypercube");
    }

    #[test]
    fn unsupported_routing_is_a_figure_level_error() {
        // The turn model on the default (torus) topology is rejected before
        // any simulation runs.
        let opts = FigureOptions::new(Scale::Smoke).with_routing(RoutingChoice::TurnModel);
        let err = Figure::Fig3.plan(&opts).err().expect("must be rejected");
        assert!(matches!(err, FigureError::UnsupportedRouting { .. }));
        assert!(format!("{err}").contains("turn-model"));
        // And an empty routing set is rejected too.
        let opts = FigureOptions::new(Scale::Smoke).with_routings(Vec::new());
        assert!(matches!(
            Figure::Fig3.plan(&opts),
            Err(FigureError::NoRoutings)
        ));
        // A nonsense topology fails to build.
        let opts = FigureOptions::new(Scale::Smoke).with_topology(TopologySpec::torus(1, 2));
        assert!(matches!(
            Figure::Fig3.plan(&opts),
            Err(FigureError::Topology(_))
        ));
    }

    #[test]
    fn default_point_configs_are_torus_points() {
        let cfgs = Figure::Fig3
            .point_configs(&FigureOptions::new(Scale::Quick))
            .unwrap();
        // 2 routings × 3 V panels × (2 M × 3 nf) curves × 5 rate points.
        assert_eq!(cfgs.len(), 2 * 3 * 6 * 5);
        assert!(cfgs.iter().all(|c| c.topology == TopologySpec::torus(8, 2)));
        // A topology override rewrites every point, keeping the grid shape.
        let mesh = Figure::Fig3
            .point_configs(
                &FigureOptions::new(Scale::Quick).with_topology(TopologySpec::mesh(8, 2)),
            )
            .unwrap();
        assert_eq!(mesh.len(), cfgs.len());
        assert!(mesh.iter().all(|c| c.topology == TopologySpec::mesh(8, 2)));
        // Seeds are untouched by the override, so fault placements (drawn
        // from per-curve fault seeds) stay comparable across shapes.
        for (a, b) in cfgs.iter().zip(&mesh) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.fault_seed, b.fault_seed);
        }
    }

    #[test]
    fn fig5_regions_that_do_not_fit_surface_as_point_failures() {
        // The paper's Fig. 5 regions cannot fit a radix-2 hypercube: every
        // point fails with a typed region-placement error, but the figure
        // still assembles instead of panicking.
        let res = Figure::Fig5
            .run_with(
                &FigureOptions::new(Scale::Smoke)
                    .with_topology(TopologySpec::hypercube(4))
                    .with_routing(RoutingChoice::Adaptive),
            )
            .unwrap();
        assert_eq!(res.num_points(), 0);
        assert!(!res.failures.is_empty());
        assert!(res.failures.iter().all(|f| f.error.contains("fault")));
        assert!(res.render_text().contains("failed to run"));
    }

    #[test]
    fn fat_tree_figure_grid_builds_and_fig5_is_rejected() {
        // Fig. 3 on a fat-tree with up/down routing plans a full grid.
        let opts = FigureOptions::new(Scale::Smoke)
            .with_topology(TopologySpec::fat_tree(4, 2))
            .with_routing(RoutingChoice::UpDownDeterministic);
        let cfgs = Figure::Fig3.point_configs(&opts).unwrap();
        assert!(!cfgs.is_empty());
        assert!(cfgs
            .iter()
            .all(|c| c.topology == TopologySpec::fat_tree(4, 2)));
        // Grid-only routings are rejected on the fat-tree up front.
        let opts = FigureOptions::new(Scale::Smoke)
            .with_topology(TopologySpec::fat_tree(4, 2))
            .with_routing(RoutingChoice::Deterministic);
        assert!(matches!(
            Figure::Fig3.plan(&opts),
            Err(FigureError::UnsupportedRouting { .. })
        ));
        // Fig. 5's fault regions are grid concepts: typed rejection.
        let opts = FigureOptions::new(Scale::Smoke)
            .with_topology(TopologySpec::fat_tree(4, 2))
            .with_routing(RoutingChoice::UpDownAdaptive);
        let err = Figure::Fig5.plan(&opts).err().expect("must be rejected");
        assert!(matches!(err, FigureError::RegionsNeedGrid { .. }));
        assert!(format!("{err}").contains("indirect"));
    }

    #[test]
    fn average_reports_mean() {
        use torus_metrics::{MetricsCollector, WarmupPolicy};
        let make = |latency: u64| {
            let mut c = MetricsCollector::new(4, WarmupPolicy::None);
            let m = c.on_generated(0);
            c.on_delivered(0, 0, latency, 8, 2, m);
            c.report(100, 0)
        };
        let avg = average_reports(&[make(10), make(30)]);
        assert!((avg.mean_latency - 20.0).abs() < 1e-9);
        assert_eq!(avg.delivered_messages, 1);
        // Averaging a single report is the identity.
        let one = make(17);
        let same = average_reports(std::slice::from_ref(&one));
        assert_eq!(same.mean_latency.to_bits(), one.mean_latency.to_bits());
        assert_eq!(same.cycles, one.cycles);
    }

    #[test]
    #[should_panic(expected = "cannot average zero reports")]
    fn average_of_nothing_panics() {
        average_reports(&[]);
    }

    #[test]
    fn capitalise_labels() {
        assert_eq!(capitalise("deterministic"), "Deterministic");
        assert_eq!(capitalise(""), "");
    }
}
