//! The exact experiment grids of Figs. 3–7 of the paper.
//!
//! Every figure is a set of independent simulation points; `Figure::run`
//! executes them in parallel (deterministically, each point owns its seed) and
//! returns a [`FigureResult`] whose text rendering reproduces the series the
//! paper plots.
//!
//! Two scales are provided:
//!
//! * [`Scale::Quick`] — a reduced message budget and coarser rate grid, meant
//!   for laptops and CI (minutes);
//! * [`Scale::Paper`] — the paper's methodology (100,000 messages per point,
//!   of which the first 10,000 are discarded) and a denser grid.

use crate::experiment::{ExperimentConfig, ExperimentOutcome, RoutingChoice};
use crate::results::{CurveResult, FigureResult, Metric, PanelResult, PointResult};
use crate::sweep::run_parallel;
use serde::{Deserialize, Serialize};
use torus_faults::{FaultScenario, RegionShape};

/// Measurement scale of a figure run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Reduced budget: quick to run, qualitatively identical curves.
    Quick,
    /// The paper's full budget (10,000 warm-up + 90,000 measured messages per
    /// point) and denser sweeps.
    Paper,
}

impl Scale {
    fn warmup(self) -> u64 {
        match self {
            Scale::Quick => 1_000,
            Scale::Paper => 10_000,
        }
    }

    fn measured(self) -> u64 {
        match self {
            Scale::Quick => 5_000,
            Scale::Paper => 90_000,
        }
    }

    fn max_cycles(self, num_nodes: usize) -> u64 {
        match self {
            // Large enough to reach steady state well past saturation, small
            // enough that saturated points terminate promptly.
            Scale::Quick => {
                if num_nodes > 256 {
                    40_000
                } else {
                    60_000
                }
            }
            Scale::Paper => 1_000_000,
        }
    }

    fn rate_points(self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Paper => 8,
        }
    }

    fn fault_step(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Paper => 1,
        }
    }
}

/// The figures of the paper's evaluation section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 3 — mean latency vs traffic rate, 8-ary 2-cube, deterministic and
    /// adaptive routing, M = 32/64, V = 4/6/10, nf = 0/3/5 random node faults.
    Fig3,
    /// Fig. 4 — mean latency vs traffic rate, 8-ary 3-cube, M = 32/64,
    /// V = 4/6/10, nf = 0/12 random node faults.
    Fig4,
    /// Fig. 5 — mean latency vs traffic rate for convex and concave fault
    /// regions, 8-ary 2-cube, M = 32, V = 10.
    Fig5,
    /// Fig. 6 — throughput vs number of random node faults, 16-ary 2-cube,
    /// M = 32, V = 6.
    Fig6,
    /// Fig. 7 — number of messages queued (absorbed) vs number of random node
    /// faults, 8-ary 3-cube, M = 32, V = 10, generation rates "70" and "100".
    Fig7,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 5] = [
        Figure::Fig3,
        Figure::Fig4,
        Figure::Fig5,
        Figure::Fig6,
        Figure::Fig7,
    ];

    /// Identifier ("fig3" ... "fig7").
    pub fn id(&self) -> &'static str {
        match self {
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
        }
    }

    /// Parses an identifier.
    pub fn from_id(id: &str) -> Option<Figure> {
        Figure::ALL.into_iter().find(|f| f.id() == id)
    }

    /// Title mirroring the paper's caption.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Fig3 => {
                "Mean message latency vs traffic rate, 8-ary 2-cube, deterministic/adaptive, M=32/64, V=4/6/10, nf=0/3/5"
            }
            Figure::Fig4 => {
                "Mean message latency vs traffic rate, 8-ary 3-cube, deterministic/adaptive, M=32/64, V=4/6/10, nf=0/12"
            }
            Figure::Fig5 => {
                "Mean message latency vs traffic rate for convex/concave fault regions, 8-ary 2-cube, M=32, V=10"
            }
            Figure::Fig6 => {
                "Throughput vs number of random faulty nodes, 16-ary 2-cube, M=32, V=6"
            }
            Figure::Fig7 => {
                "Messages queued vs number of random faulty nodes, 8-ary 3-cube, M=32, V=10, generation rates 70/100"
            }
        }
    }

    /// Runs the whole figure at the given scale.
    pub fn run(&self, scale: Scale) -> FigureResult {
        match self {
            Figure::Fig3 => latency_figure(scale, "fig3", self.title(), 8, 2, &[0, 3, 5]),
            Figure::Fig4 => latency_figure(scale, "fig4", self.title(), 8, 3, &[0, 12]),
            Figure::Fig5 => fig5(scale),
            Figure::Fig6 => fig6(scale),
            Figure::Fig7 => fig7(scale),
        }
    }
}

/// Cycle cap for one experiment point: the scale's base cap, extended so that
/// a lightly loaded (far-from-saturation) point always has enough cycles to
/// generate and deliver its whole message budget — otherwise the lowest-rate
/// points would be mislabelled as saturated simply because the cycle budget
/// expired before the message budget.
fn budgeted_max_cycles(scale: Scale, cfg: &ExperimentConfig) -> u64 {
    let generation_cycles =
        (cfg.warmup_messages + cfg.measured_messages) as f64 / (cfg.rate * cfg.num_nodes() as f64);
    scale
        .max_cycles(cfg.num_nodes())
        .max((4.0 * generation_cycles).ceil() as u64)
}

/// Per-(routing, V) saturation-aware maximum traffic rate of the sweep grids,
/// chosen to bracket the saturation points visible in the paper's figures.
fn max_rate(routing: RoutingChoice, v: usize, dims: u32) -> f64 {
    let base = match (routing, v) {
        (RoutingChoice::Deterministic, 4) => 0.013,
        (RoutingChoice::Deterministic, 6) => 0.016,
        (RoutingChoice::Deterministic, _) => 0.019,
        (RoutingChoice::Adaptive, 4) => 0.016,
        (RoutingChoice::Adaptive, 6) => 0.020,
        (RoutingChoice::Adaptive, _) => 0.023,
        // The turn model never appears in the paper's torus figures (wrapped
        // dimensions reject it); mesh comparisons reuse the adaptive ranges.
        (RoutingChoice::TurnModel, 4) => 0.016,
        (RoutingChoice::TurnModel, 6) => 0.020,
        (RoutingChoice::TurnModel, _) => 0.023,
    };
    // The 8-ary 3-cube saturates at similar per-node rates (Fig. 4 uses the
    // same axis ranges as Fig. 3), so no dimensional correction is applied.
    let _ = dims;
    base
}

/// Evenly spaced traffic grid from a low load up to `max`.
fn rate_grid(max: f64, points: usize) -> Vec<f64> {
    let start = 0.002;
    (0..points)
        .map(|i| start + (max - start) * i as f64 / (points.saturating_sub(1).max(1)) as f64)
        .collect()
}

/// Deterministic per-point seed derived from the figure id and the point's
/// coordinates, so every figure is reproducible and the two routing flavours
/// of a comparison see the same fault placements (the fault RNG stream is
/// derived from the seed inside `ExperimentConfig::run`, independently of the
/// routing flavour).
fn point_seed(fig: &str, panel: usize, curve: usize, point: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in fig.bytes().chain([panel as u8, curve as u8, point as u8]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn outcome_point(x: f64, outcome: ExperimentOutcome) -> PointResult {
    PointResult {
        x,
        report: outcome.report,
        saturated: outcome.hit_max_cycles,
    }
}

/// Shared driver for Figs. 3 and 4: mean latency vs traffic rate over panels
/// (routing × V), curves (M × nf).
fn latency_figure(
    scale: Scale,
    id: &str,
    title: &str,
    radix: u16,
    dims: u32,
    fault_counts: &[usize],
) -> FigureResult {
    let vs = [4usize, 6, 10];
    let ms = [32u32, 64];
    // Build the flat list of experiment configs with their (panel, curve, x)
    // coordinates.
    let mut tagged: Vec<(usize, usize, f64, ExperimentConfig)> = Vec::new();
    let mut panels_meta: Vec<(String, Vec<String>)> = Vec::new();
    let mut panel_idx = 0;
    for routing in RoutingChoice::BOTH {
        for &v in &vs {
            let rates = rate_grid(max_rate(routing, v, dims), scale.rate_points());
            let mut curve_labels = Vec::new();
            let mut curve_idx = 0;
            for &m in &ms {
                for &nf in fault_counts {
                    curve_labels.push(format!("M={m}, nf={nf}"));
                    for (pi, &rate) in rates.iter().enumerate() {
                        let faults = if nf == 0 {
                            FaultScenario::None
                        } else {
                            FaultScenario::RandomNodes { count: nf }
                        };
                        let cfg = ExperimentConfig::paper_point(radix, dims, v, m, rate)
                            .with_routing(routing)
                            .with_faults(faults)
                            .with_seed(point_seed(id, panel_idx, curve_idx, pi))
                            // One fault placement per curve (the paper sweeps
                            // the traffic rate against a fixed set of faults).
                            .with_fault_seed(point_seed(id, panel_idx, curve_idx, 255))
                            .quick(scale.measured(), scale.warmup());
                        let cfg = ExperimentConfig {
                            max_cycles: budgeted_max_cycles(scale, &cfg),
                            ..cfg
                        };
                        tagged.push((panel_idx, curve_idx, rate, cfg));
                    }
                    curve_idx += 1;
                }
            }
            panels_meta.push((
                format!(
                    "{} routing, {}-ary {}-cube, V={}",
                    capitalise(routing.label()),
                    radix,
                    dims,
                    v
                ),
                curve_labels,
            ));
            panel_idx += 1;
        }
    }
    assemble_figure(
        id,
        title,
        Metric::MeanLatency,
        "Traffic rate",
        tagged,
        panels_meta,
    )
}

/// Fig. 5: latency vs traffic rate for the five fault-region shapes, both
/// routing flavours, 8-ary 2-cube, M = 32, V = 10.
fn fig5(scale: Scale) -> FigureResult {
    let radix = 8;
    let dims = 2;
    let v = 10;
    let m = 32;
    let torus = torus_topology::Network::torus(radix, dims).expect("valid topology");
    let mut tagged = Vec::new();
    let mut curve_labels = Vec::new();
    let mut curve_idx = 0;
    for routing in RoutingChoice::BOTH {
        for (shape, shape_label) in RegionShape::paper_fig5_regions() {
            curve_labels.push(format!(
                "{}, nf={}, {}",
                capitalise(routing.label()),
                shape.node_count(),
                shape_label
            ));
            let rates = rate_grid(max_rate(routing, v, dims), scale.rate_points());
            for (pi, &rate) in rates.iter().enumerate() {
                let cfg = ExperimentConfig::paper_point(radix, dims, v, m, rate)
                    .with_routing(routing)
                    .with_faults(FaultScenario::centered_region(&torus, shape))
                    .with_seed(point_seed("fig5", 0, curve_idx, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((0usize, curve_idx, rate, cfg));
            }
            curve_idx += 1;
        }
    }
    let panels_meta = vec![(
        format!("{radix}-ary {dims}-cube, M={m}, V={v}, convex and concave fault regions"),
        curve_labels,
    )];
    assemble_figure(
        "fig5",
        Figure::Fig5.title(),
        Metric::MeanLatency,
        "Traffic rate",
        tagged,
        panels_meta,
    )
}

/// Fig. 6: throughput vs number of random faulty nodes, 16-ary 2-cube, M = 32,
/// V = 6, measured at a fixed offered load above the deterministic saturation
/// point, averaged over several random placements per fault count.
fn fig6(scale: Scale) -> FigureResult {
    let radix = 16;
    let dims = 2;
    let v = 6;
    let m = 32;
    let offered = 0.012;
    let reps: u64 = match scale {
        Scale::Quick => 2,
        Scale::Paper => 5,
    };
    let fault_counts: Vec<usize> = (0..=10).step_by(scale.fault_step().min(2)).collect();
    let mut tagged: Vec<(usize, usize, f64, ExperimentConfig)> = Vec::new();
    let mut curve_labels = Vec::new();
    for (curve_idx, routing) in RoutingChoice::BOTH.into_iter().enumerate() {
        curve_labels.push(routing.label().to_string());
        for (pi, &nf) in fault_counts.iter().enumerate() {
            for rep in 0..reps {
                let faults = if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                };
                let cfg = ExperimentConfig::paper_point(radix, dims, v, m, offered)
                    .with_routing(routing)
                    .with_faults(faults)
                    .with_seed(point_seed("fig6", rep as usize, curve_idx, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((curve_idx, pi, nf as f64, cfg));
            }
        }
    }
    // Run all points, then average the repetitions of each (curve, nf) cell.
    let outcomes = run_parallel(tagged, |(curve, pi, x, cfg)| {
        (*curve, *pi, *x, cfg.run().expect("fig6 point must run"))
    });
    let mut curves: Vec<CurveResult> = curve_labels
        .iter()
        .map(|label| CurveResult {
            label: label.clone(),
            points: Vec::new(),
        })
        .collect();
    for (curve_idx, _) in RoutingChoice::BOTH.into_iter().enumerate() {
        for (pi, &nf) in fault_counts.iter().enumerate() {
            let cell: Vec<&ExperimentOutcome> = outcomes
                .iter()
                .filter(|(c, p, _, _)| *c == curve_idx && *p == pi)
                .map(|(_, _, _, o)| o)
                .collect();
            let reports: Vec<torus_metrics::SimulationReport> =
                cell.iter().map(|o| o.report.clone()).collect();
            let averaged = average_reports(&reports);
            curves[curve_idx].points.push(PointResult {
                x: nf as f64,
                report: averaged,
                saturated: cell.iter().all(|o| o.hit_max_cycles),
            });
        }
    }
    FigureResult {
        id: "fig6".to_string(),
        title: Figure::Fig6.title().to_string(),
        panels: vec![PanelResult {
            title: format!("{radix}-ary {dims}-cube, M={m}, V={v}, offered load {offered}"),
            x_label: "Number of faulty nodes".to_string(),
            metric: Metric::Throughput,
            curves,
        }],
    }
}

/// Fig. 7: messages queued (absorption events) vs number of random faulty
/// nodes, 8-ary 3-cube, M = 32, V = 10, for the two generation rates the paper
/// labels "70" and "100" (interpreted as mean inter-arrival times in cycles,
/// i.e. λ = 1/70 and 1/100 messages/node/cycle — see DESIGN.md).
fn fig7(scale: Scale) -> FigureResult {
    let radix = 8;
    let dims = 3;
    let v = 10;
    let m = 32;
    let rates = [(70u32, 1.0 / 70.0), (100u32, 1.0 / 100.0)];
    let fault_counts: Vec<usize> = (0..=12).step_by(scale.fault_step()).collect();
    let mut tagged = Vec::new();
    let mut curve_labels = Vec::new();
    let mut curve_idx = 0;
    for routing in RoutingChoice::BOTH {
        for &(label, rate) in &rates {
            curve_labels.push(format!(
                "{}, generation rate={}",
                capitalise(routing.label()),
                label
            ));
            for (pi, &nf) in fault_counts.iter().enumerate() {
                let faults = if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                };
                let cfg = ExperimentConfig::paper_point(radix, dims, v, m, rate)
                    .with_routing(routing)
                    .with_faults(faults)
                    .with_seed(point_seed("fig7", 0, curve_idx, pi))
                    // The same placement of `nf` faults is shared by all four
                    // curves so they are directly comparable at each x.
                    .with_fault_seed(point_seed("fig7-faults", 0, 0, pi))
                    .quick(scale.measured(), scale.warmup());
                let cfg = ExperimentConfig {
                    max_cycles: budgeted_max_cycles(scale, &cfg),
                    ..cfg
                };
                tagged.push((0usize, curve_idx, nf as f64, cfg));
            }
            curve_idx += 1;
        }
    }
    let panels_meta = vec![(
        format!("{radix}-ary {dims}-cube, M={m}, V={v}"),
        curve_labels,
    )];
    assemble_figure(
        "fig7",
        Figure::Fig7.title(),
        Metric::MessagesQueued,
        "Number of faulty nodes",
        tagged,
        panels_meta,
    )
}

/// Runs the tagged experiment list in parallel and assembles the figure.
fn assemble_figure(
    id: &str,
    title: &str,
    metric: Metric,
    x_label: &str,
    tagged: Vec<(usize, usize, f64, ExperimentConfig)>,
    panels_meta: Vec<(String, Vec<String>)>,
) -> FigureResult {
    let outcomes = run_parallel(tagged, |(panel, curve, x, cfg)| {
        (
            *panel,
            *curve,
            *x,
            cfg.run().expect("figure point must run"),
        )
    });
    let mut panels: Vec<PanelResult> = panels_meta
        .into_iter()
        .map(|(ptitle, curve_labels)| PanelResult {
            title: ptitle,
            x_label: x_label.to_string(),
            metric,
            curves: curve_labels
                .into_iter()
                .map(|label| CurveResult {
                    label,
                    points: Vec::new(),
                })
                .collect(),
        })
        .collect();
    for (panel, curve, x, outcome) in outcomes {
        panels[panel].curves[curve]
            .points
            .push(outcome_point(x, outcome));
    }
    for panel in &mut panels {
        for curve in &mut panel.curves {
            curve
                .points
                .sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite x values"));
        }
    }
    FigureResult {
        id: id.to_string(),
        title: title.to_string(),
        panels,
    }
}

/// Field-wise average of several simulation reports (used by Fig. 6 to average
/// over independent random fault placements).
pub fn average_reports(
    reports: &[torus_metrics::SimulationReport],
) -> torus_metrics::SimulationReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len() as f64;
    let mut avg = reports[0].clone();
    let sum_f =
        |f: fn(&torus_metrics::SimulationReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    avg.mean_latency = sum_f(|r| r.mean_latency);
    avg.latency_std_dev = sum_f(|r| r.latency_std_dev);
    avg.latency_ci95 = sum_f(|r| r.latency_ci95);
    avg.mean_network_latency = sum_f(|r| r.mean_network_latency);
    avg.mean_hops = sum_f(|r| r.mean_hops);
    avg.throughput = sum_f(|r| r.throughput);
    avg.flit_throughput = sum_f(|r| r.flit_throughput);
    avg.acceptance_ratio = sum_f(|r| r.acceptance_ratio);
    avg.p50_latency = sum_f(|r| r.p50_latency);
    avg.p99_latency = sum_f(|r| r.p99_latency);
    avg.max_latency = reports.iter().map(|r| r.max_latency).fold(0.0, f64::max);
    avg.cycles = (reports.iter().map(|r| r.cycles).sum::<u64>() as f64 / n) as u64;
    avg.generated_messages =
        (reports.iter().map(|r| r.generated_messages).sum::<u64>() as f64 / n) as u64;
    avg.measured_messages =
        (reports.iter().map(|r| r.measured_messages).sum::<u64>() as f64 / n) as u64;
    avg.delivered_messages =
        (reports.iter().map(|r| r.delivered_messages).sum::<u64>() as f64 / n) as u64;
    avg.in_flight_messages =
        (reports.iter().map(|r| r.in_flight_messages).sum::<u64>() as f64 / n) as u64;
    avg.messages_queued =
        (reports.iter().map(|r| r.messages_queued).sum::<u64>() as f64 / n) as u64;
    avg.messages_queued_measured = (reports
        .iter()
        .map(|r| r.messages_queued_measured)
        .sum::<u64>() as f64
        / n) as u64;
    avg.reinjection_queue_peak = reports
        .iter()
        .map(|r| r.reinjection_queue_peak)
        .max()
        .unwrap_or(0);
    avg
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_identifiers() {
        assert_eq!(Figure::Fig3.id(), "fig3");
        assert_eq!(Figure::from_id("fig6"), Some(Figure::Fig6));
        assert_eq!(Figure::from_id("nope"), None);
        assert_eq!(Figure::ALL.len(), 5);
        for f in Figure::ALL {
            assert!(!f.title().is_empty());
        }
    }

    #[test]
    fn scales() {
        assert!(Scale::Paper.measured() > Scale::Quick.measured());
        assert!(Scale::Paper.warmup() > Scale::Quick.warmup());
        assert!(Scale::Paper.rate_points() > Scale::Quick.rate_points());
        assert!(Scale::Quick.max_cycles(512) <= Scale::Quick.max_cycles(64));
        assert_eq!(Scale::Paper.fault_step(), 1);
    }

    #[test]
    fn rate_grid_shape() {
        let g = rate_grid(0.012, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.002).abs() < 1e-12);
        assert!((g[4] - 0.012).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn max_rates_ordered_by_adaptivity_and_vcs() {
        for dims in [2, 3] {
            for v in [4, 6, 10] {
                assert!(
                    max_rate(RoutingChoice::Adaptive, v, dims)
                        > max_rate(RoutingChoice::Deterministic, v, dims)
                );
            }
            assert!(
                max_rate(RoutingChoice::Deterministic, 10, dims)
                    > max_rate(RoutingChoice::Deterministic, 4, dims)
            );
        }
    }

    #[test]
    fn point_seeds_are_distinct() {
        let mut seeds = std::collections::HashSet::new();
        for panel in 0..6 {
            for curve in 0..6 {
                for point in 0..8 {
                    seeds.insert(point_seed("fig3", panel, curve, point));
                }
            }
        }
        assert_eq!(seeds.len(), 6 * 6 * 8);
        assert_ne!(point_seed("fig3", 0, 0, 0), point_seed("fig4", 0, 0, 0));
    }

    #[test]
    fn average_reports_mean() {
        use torus_metrics::{MetricsCollector, WarmupPolicy};
        let make = |latency: u64| {
            let mut c = MetricsCollector::new(4, WarmupPolicy::None);
            let m = c.on_generated(0);
            c.on_delivered(0, 0, latency, 8, 2, m);
            c.report(100, 0)
        };
        let avg = average_reports(&[make(10), make(30)]);
        assert!((avg.mean_latency - 20.0).abs() < 1e-9);
        assert_eq!(avg.delivered_messages, 1);
    }

    #[test]
    #[should_panic(expected = "cannot average zero reports")]
    fn average_of_nothing_panics() {
        average_reports(&[]);
    }

    #[test]
    fn capitalise_labels() {
        assert_eq!(capitalise("deterministic"), "Deterministic");
        assert_eq!(capitalise(""), "");
    }
}
