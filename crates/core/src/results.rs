//! Structured figure results and their text/CSV rendering.

use serde::{Deserialize, Serialize};
use torus_metrics::SimulationReport;

/// One point of a curve: an x value (traffic rate or number of faults) and the
/// simulation report measured there.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// The x coordinate (traffic rate in messages/node/cycle, or number of
    /// faulty nodes, depending on the figure).
    pub x: f64,
    /// Full metrics report of the simulation at this point.
    pub report: SimulationReport,
    /// True if the point stopped at the cycle cap (a saturated point).
    pub saturated: bool,
}

impl PointResult {
    /// The y value this figure plots at this point.
    pub fn y(&self, metric: Metric) -> f64 {
        match metric {
            Metric::MeanLatency => self.report.mean_latency,
            Metric::Throughput => self.report.throughput,
            Metric::MessagesQueued => self.report.messages_queued as f64,
        }
    }
}

/// The metric a figure plots on its y axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Mean message latency in cycles (Figs. 3, 4, 5).
    MeanLatency,
    /// Delivered messages per node per cycle (Fig. 6).
    Throughput,
    /// Number of messages absorbed into local queues (Fig. 7).
    MessagesQueued,
}

impl Metric {
    /// Axis label used in the rendered tables.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::MeanLatency => "mean latency (cycles)",
            Metric::Throughput => "throughput (messages/node/cycle)",
            Metric::MessagesQueued => "messages queued",
        }
    }
}

/// One curve of a figure panel (for example "M=32, nf=5").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CurveResult {
    /// Legend label of the curve.
    pub label: String,
    /// Points of the curve, in increasing x.
    pub points: Vec<PointResult>,
}

impl CurveResult {
    /// The largest x whose point is not saturated — an estimate of the
    /// saturation rate of this configuration.
    pub fn last_unsaturated_x(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| p.x)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// One panel of a figure (one sub-plot, e.g. "Deterministic routing, V=4").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PanelResult {
    /// Panel title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Metric plotted on the y axis.
    pub metric: Metric,
    /// The curves of the panel.
    pub curves: Vec<CurveResult>,
}

/// A point that failed to run: its coordinates in the figure and the rendered
/// experiment error. Figures collect failures instead of aborting, so one
/// incompatible point (for example a fault region that does not fit the
/// requested topology) leaves a hole in its curve rather than killing the
/// whole figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointFailure {
    /// Title of the panel the point belongs to.
    pub panel: String,
    /// Legend label of the curve the point belongs to.
    pub curve: String,
    /// The x coordinate of the failed point.
    pub x: f64,
    /// The rendered [`swbft_core::ExperimentError`](crate::ExperimentError).
    pub error: String,
}

/// A complete reproduced figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier, e.g. "fig3".
    pub id: String,
    /// Title of the figure (mirrors the paper's caption).
    pub title: String,
    /// Panels of the figure.
    pub panels: Vec<PanelResult>,
    /// Points that failed to run (empty on a fully successful figure).
    #[serde(default)]
    pub failures: Vec<PointFailure>,
}

impl FigureResult {
    /// Total number of simulation points contained in the figure.
    pub fn num_points(&self) -> usize {
        self.panels
            .iter()
            .flat_map(|p| p.curves.iter())
            .map(|c| c.points.len())
            .sum()
    }

    /// Renders the figure as aligned text tables, one per panel, with one row
    /// per x value and one column per curve — the same series the paper
    /// plots.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for panel in &self.panels {
            out.push_str(&format!("\n-- {} --\n", panel.title));
            out.push_str(&format!("   y = {}\n", panel.metric.label()));
            // Header row.
            out.push_str(&format!("{:>14}", panel.x_label));
            for curve in &panel.curves {
                out.push_str(&format!(" | {:>22}", curve.label));
            }
            out.push('\n');
            // Collect the union of x values (curves of one panel share the
            // grid by construction, but be tolerant).
            let mut xs: Vec<f64> = panel
                .curves
                .iter()
                .flat_map(|c| c.points.iter().map(|p| p.x))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            for x in xs {
                out.push_str(&format!("{x:>14.5}"));
                for curve in &panel.curves {
                    match curve.points.iter().find(|p| (p.x - x).abs() < 1e-12) {
                        Some(p) => {
                            let sat = if p.saturated { "*" } else { " " };
                            out.push_str(&format!(" | {:>21.3}{}", p.y(panel.metric), sat));
                        }
                        None => out.push_str(&format!(" | {:>22}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        out.push_str("\n(* = the point hit the simulation cycle cap: the network is saturated)\n");
        if !self.failures.is_empty() {
            out.push_str(&format!(
                "\n!! {} point(s) failed to run:\n",
                self.failures.len()
            ));
            for f in &self.failures {
                out.push_str(&format!(
                    "   [{} | {} | x={}] {}\n",
                    f.panel, f.curve, f.x, f.error
                ));
            }
        }
        out
    }

    /// Renders each panel as a rough ASCII scatter plot (x → y, one symbol per
    /// curve), handy for eyeballing the curve shapes in a terminal without any
    /// plotting dependency.
    pub fn render_ascii_plot(&self, width: usize, height: usize) -> String {
        const SYMBOLS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&', '$', '~'];
        let width = width.max(16);
        let height = height.max(6);
        let mut out = String::new();
        for panel in &self.panels {
            out.push_str(&format!("\n{} — {}\n", panel.title, panel.metric.label()));
            let all_points: Vec<(f64, f64)> = panel
                .curves
                .iter()
                .flat_map(|c| c.points.iter().map(|p| (p.x, p.y(panel.metric))))
                .collect();
            if all_points.is_empty() {
                out.push_str("  (no points)\n");
                continue;
            }
            let (mut x_min, mut x_max, mut y_min, mut y_max) = (
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            );
            for &(x, y) in &all_points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
            let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
            let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
            let mut grid = vec![vec![' '; width]; height];
            for (ci, curve) in panel.curves.iter().enumerate() {
                let symbol = SYMBOLS[ci % SYMBOLS.len()];
                for p in &curve.points {
                    let col = ((p.x - x_min) / x_span * (width - 1) as f64).round() as usize;
                    let row = ((p.y(panel.metric) - y_min) / y_span * (height - 1) as f64).round()
                        as usize;
                    let row = height - 1 - row.min(height - 1);
                    grid[row][col.min(width - 1)] = symbol;
                }
            }
            for (i, row) in grid.iter().enumerate() {
                let y_val = y_max - y_span * i as f64 / (height - 1) as f64;
                out.push_str(&format!("{y_val:>12.1} |"));
                out.extend(row.iter());
                out.push('\n');
            }
            out.push_str(&format!("{:>12} +{}\n", "", "-".repeat(width)));
            out.push_str(&format!(
                "{:>12}  {:<width$.5}{:>8.5}\n",
                "",
                x_min,
                x_max,
                width = width - 7
            ));
            for (ci, curve) in panel.curves.iter().enumerate() {
                out.push_str(&format!(
                    "{:>14} = {}\n",
                    SYMBOLS[ci % SYMBOLS.len()],
                    curve.label
                ));
            }
        }
        out
    }

    /// Renders every point of the figure as CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "figure,panel,curve,x,mean_latency,throughput,messages_queued,mean_hops,delivered,saturated\n",
        );
        for panel in &self.panels {
            for curve in &panel.curves {
                for p in &curve.points {
                    out.push_str(&format!(
                        "{},{},{},{:.6},{:.3},{:.6},{},{:.3},{},{}\n",
                        self.id,
                        panel.title.replace(',', ";"),
                        curve.label.replace(',', ";"),
                        p.x,
                        p.report.mean_latency,
                        p.report.throughput,
                        p.report.messages_queued,
                        p.report.mean_hops,
                        p.report.delivered_messages,
                        p.saturated,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_metrics::{MetricsCollector, WarmupPolicy};

    fn dummy_report(latency: f64) -> SimulationReport {
        let mut c = MetricsCollector::new(64, WarmupPolicy::None);
        let m = c.on_generated(0);
        c.on_delivered(0, 0, latency as u64, 32, 4, m);
        c.report(1000, 0)
    }

    fn dummy_figure() -> FigureResult {
        FigureResult {
            id: "figX".to_string(),
            title: "test figure".to_string(),
            panels: vec![PanelResult {
                title: "panel A".to_string(),
                x_label: "Traffic rate".to_string(),
                metric: Metric::MeanLatency,
                curves: vec![
                    CurveResult {
                        label: "M=32, nf=0".to_string(),
                        points: vec![
                            PointResult {
                                x: 0.001,
                                report: dummy_report(50.0),
                                saturated: false,
                            },
                            PointResult {
                                x: 0.002,
                                report: dummy_report(80.0),
                                saturated: true,
                            },
                        ],
                    },
                    CurveResult {
                        label: "M=64, nf=0".to_string(),
                        points: vec![PointResult {
                            x: 0.001,
                            report: dummy_report(90.0),
                            saturated: false,
                        }],
                    },
                ],
            }],
            failures: Vec::new(),
        }
    }

    #[test]
    fn num_points_and_saturation() {
        let f = dummy_figure();
        assert_eq!(f.num_points(), 3);
        assert_eq!(f.panels[0].curves[0].last_unsaturated_x(), Some(0.001));
    }

    #[test]
    fn text_rendering_contains_all_series() {
        let text = dummy_figure().render_text();
        assert!(text.contains("figX"));
        assert!(text.contains("panel A"));
        assert!(text.contains("M=32, nf=0"));
        assert!(text.contains("M=64, nf=0"));
        assert!(text.contains("0.00100"));
        assert!(text.contains("*"), "saturated points are marked");
        assert!(text.contains("-"), "missing points are dashed");
    }

    #[test]
    fn ascii_plot_contains_all_curves_and_axes() {
        let plot = dummy_figure().render_ascii_plot(40, 10);
        assert!(plot.contains("panel A"));
        assert!(plot.contains("o = M=32, nf=0"));
        assert!(plot.contains("x = M=64, nf=0"));
        assert!(plot.contains('|'));
        assert!(plot.contains('+'));
        // Both curve symbols appear somewhere on the canvas.
        assert!(plot.matches('o').count() >= 1);
        assert!(
            plot.matches('x').count() >= 2,
            "legend + at least one point"
        );
    }

    #[test]
    fn ascii_plot_handles_empty_panels() {
        let fig = FigureResult {
            id: "empty".into(),
            title: "empty".into(),
            panels: vec![PanelResult {
                title: "nothing".into(),
                x_label: "x".into(),
                metric: Metric::MeanLatency,
                curves: vec![],
            }],
            failures: Vec::new(),
        };
        assert!(fig.render_ascii_plot(20, 8).contains("(no points)"));
    }

    #[test]
    fn failed_points_are_listed_in_the_text_rendering() {
        let mut fig = dummy_figure();
        assert!(!fig.render_text().contains("failed to run"));
        fig.failures.push(PointFailure {
            panel: "panel A".into(),
            curve: "M=32, nf=0".into(),
            x: 0.003,
            error: "fault scenario error: region does not fit".into(),
        });
        let text = fig.render_text();
        assert!(text.contains("1 point(s) failed to run"));
        assert!(text.contains("region does not fit"));
    }

    #[test]
    fn nan_x_values_do_not_panic_the_text_rendering() {
        let mut fig = dummy_figure();
        fig.panels[0].curves[0].points.push(PointResult {
            x: f64::NAN,
            report: dummy_report(1.0),
            saturated: false,
        });
        let _ = fig.render_text();
    }

    #[test]
    fn csv_rendering_has_one_row_per_point() {
        let csv = dummy_figure().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[0].starts_with("figure,panel,curve"));
        assert!(lines[1].contains("figX"));
    }

    #[test]
    fn metric_selection() {
        let p = PointResult {
            x: 1.0,
            report: dummy_report(42.0),
            saturated: false,
        };
        assert!(p.y(Metric::MeanLatency) > 0.0);
        assert_eq!(p.y(Metric::MessagesQueued), 0.0);
        assert_eq!(
            Metric::Throughput.label(),
            "throughput (messages/node/cycle)"
        );
    }
}
