//! Single experiment points: configuration and execution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use torus_faults::{FaultScenario, FaultScenarioError};
use torus_metrics::SimulationReport;
use torus_routing::{AnyRouting, SwBasedRouting, TurnModelRouting, UpDownRouting};
use torus_sim::{SimConfig, SimConfigError, Simulation, StopCondition};
use torus_topology::TopologySpec;

/// Which routing algorithm an experiment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingChoice {
    /// Deterministic Software-Based routing (e-cube in the fault-free case).
    Deterministic,
    /// Adaptive Software-Based routing (Duato's Protocol in the fault-free
    /// case).
    Adaptive,
    /// Negative-first turn-model routing (phase-adaptive with a
    /// negative-first escape channel). Only valid on open (non-wrap)
    /// topologies: running it on a wrapped dimension yields
    /// [`ExperimentError::Sim`] with
    /// [`torus_sim::SimConfigError::UnsupportedRouting`].
    TurnModel,
    /// Deterministic negative-first turn-model routing: the canonical
    /// negative-first order over the whole VC pool (1 VC suffices). The 1-VC
    /// counterpart to [`RoutingChoice::Deterministic`]'s e-cube on meshes;
    /// rejected on wrapped dimensions like [`RoutingChoice::TurnModel`].
    TurnModelDeterministic,
    /// Deterministic up*/down* routing on fat-trees: destination-aligned
    /// ascent, unique descent, one VC. Rejected with a typed error on every
    /// direct (grid) topology.
    UpDownDeterministic,
    /// Adaptive up*/down* routing on fat-trees: any live parent on the way
    /// up, deterministic escape on VC 0. Rejected on grids like
    /// [`RoutingChoice::UpDownDeterministic`].
    UpDownAdaptive,
}

impl RoutingChoice {
    /// The routing algorithm object for this choice.
    pub fn algorithm(&self) -> AnyRouting {
        match self {
            RoutingChoice::Deterministic => AnyRouting::SwBased(SwBasedRouting::deterministic()),
            RoutingChoice::Adaptive => AnyRouting::SwBased(SwBasedRouting::adaptive()),
            RoutingChoice::TurnModel => AnyRouting::TurnModel(TurnModelRouting::adaptive()),
            RoutingChoice::TurnModelDeterministic => {
                AnyRouting::TurnModel(TurnModelRouting::deterministic())
            }
            RoutingChoice::UpDownDeterministic => {
                AnyRouting::UpDown(UpDownRouting::deterministic())
            }
            RoutingChoice::UpDownAdaptive => AnyRouting::UpDown(UpDownRouting::adaptive()),
        }
    }

    /// Label used in tables ("deterministic" / "adaptive" / "turn-model" /
    /// "turn-model-det" / "updown-det" / "updown").
    pub fn label(&self) -> &'static str {
        match self {
            RoutingChoice::Deterministic => "deterministic",
            RoutingChoice::Adaptive => "adaptive",
            RoutingChoice::TurnModel => "turn-model",
            RoutingChoice::TurnModelDeterministic => "turn-model-det",
            RoutingChoice::UpDownDeterministic => "updown-det",
            RoutingChoice::UpDownAdaptive => "updown",
        }
    }

    /// Parses a CLI routing name. Accepts the labels plus short aliases:
    /// `det`, `adaptive`, `turnmodel`, `turnmodel-det`, `updown`, `updown-det`.
    pub fn parse(s: &str) -> Result<RoutingChoice, String> {
        match s {
            "det" | "deterministic" | "ecube" => Ok(RoutingChoice::Deterministic),
            "adaptive" | "duato" => Ok(RoutingChoice::Adaptive),
            "turnmodel" | "turn-model" => Ok(RoutingChoice::TurnModel),
            "turnmodel-det" | "turn-model-det" => Ok(RoutingChoice::TurnModelDeterministic),
            "updown-det" | "up-down-det" | "updown-deterministic" => {
                Ok(RoutingChoice::UpDownDeterministic)
            }
            "updown" | "up-down" | "updown-adaptive" => Ok(RoutingChoice::UpDownAdaptive),
            other => Err(format!(
                "unknown routing '{other}' (use det|adaptive|turnmodel|turnmodel-det|updown|updown-det)"
            )),
        }
    }

    /// Both Software-Based flavours, deterministic first (the order used by
    /// the paper's figures; the torus baselines never include the turn model,
    /// which wrapped dimensions reject).
    pub const BOTH: [RoutingChoice; 2] = [RoutingChoice::Deterministic, RoutingChoice::Adaptive];

    /// Every routing choice, in comparison-table order. No single topology
    /// accepts all of them — the turn models are rejected on wrapped
    /// dimensions, the up/down schemes everywhere but fat-trees.
    pub const ALL: [RoutingChoice; 6] = [
        RoutingChoice::Deterministic,
        RoutingChoice::Adaptive,
        RoutingChoice::TurnModel,
        RoutingChoice::TurnModelDeterministic,
        RoutingChoice::UpDownDeterministic,
        RoutingChoice::UpDownAdaptive,
    ];
}

/// Errors produced while setting up or running an experiment.
#[derive(Clone, Debug)]
pub enum ExperimentError {
    /// The fault scenario could not be realised.
    Faults(FaultScenarioError),
    /// The simulation configuration was invalid.
    Sim(SimConfigError),
    /// The topology parameters were invalid.
    Topology(torus_topology::NetworkError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Faults(e) => write!(f, "fault scenario error: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation configuration error: {e}"),
            ExperimentError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<FaultScenarioError> for ExperimentError {
    fn from(e: FaultScenarioError) -> Self {
        ExperimentError::Faults(e)
    }
}

impl From<SimConfigError> for ExperimentError {
    fn from(e: SimConfigError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// One fully described simulation point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The network topology (torus / mesh / hypercube / mixed-radix shape).
    pub topology: TopologySpec,
    /// Virtual channels per physical channel (`V`).
    pub virtual_channels: usize,
    /// Message length `M` in flits.
    pub message_length: u32,
    /// Traffic generation rate λ in messages/node/cycle.
    pub rate: f64,
    /// Routing flavour.
    pub routing: RoutingChoice,
    /// Fault scenario.
    pub faults: FaultScenario,
    /// RNG seed (drives traffic and, unless [`ExperimentConfig::fault_seed`]
    /// is set, fault placement).
    pub seed: u64,
    /// Optional dedicated seed for the fault placement. Figures 3 and 4 use
    /// this to keep the same random fault placement for every traffic-rate
    /// point of a curve (the paper's methodology), while still giving every
    /// point its own traffic seed.
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Messages discarded as warm-up.
    pub warmup_messages: u64,
    /// Measured messages after which the run stops.
    pub measured_messages: u64,
    /// Hard cycle cap (protects saturated points).
    pub max_cycles: u64,
    /// Flit-buffer depth per virtual channel.
    pub buffer_depth: usize,
}

impl ExperimentConfig {
    /// A paper-style experiment point on a k-ary n-cube with the given
    /// virtual channels, message length and traffic rate: deterministic
    /// routing, no faults, the reduced "quick" measurement budget.
    pub fn paper_point(radix: u16, dims: u32, v: usize, message_length: u32, rate: f64) -> Self {
        Self::topology_point(TopologySpec::torus(radix, dims), v, message_length, rate)
    }

    /// A paper-style experiment point on a k-ary n-mesh.
    pub fn mesh_point(radix: u16, dims: u32, v: usize, message_length: u32, rate: f64) -> Self {
        Self::topology_point(TopologySpec::mesh(radix, dims), v, message_length, rate)
    }

    /// A paper-style experiment point on a binary n-cube (hypercube).
    pub fn hypercube_point(dims: u32, v: usize, message_length: u32, rate: f64) -> Self {
        Self::topology_point(TopologySpec::hypercube(dims), v, message_length, rate)
    }

    /// A paper-style experiment point on an arbitrary topology spec.
    pub fn topology_point(
        topology: TopologySpec,
        v: usize,
        message_length: u32,
        rate: f64,
    ) -> Self {
        ExperimentConfig {
            topology,
            virtual_channels: v,
            message_length,
            rate,
            routing: RoutingChoice::Deterministic,
            faults: FaultScenario::None,
            seed: 0x5afae1,
            fault_seed: None,
            warmup_messages: 1_000,
            measured_messages: 9_000,
            max_cycles: 150_000,
            buffer_depth: 2,
        }
    }

    /// Sets the routing flavour.
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the topology spec (keeping every other parameter).
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the fault scenario.
    pub fn with_faults(mut self, faults: FaultScenario) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the fault placement to a dedicated seed, independent of the
    /// traffic seed (used to keep one placement for a whole curve).
    pub fn with_fault_seed(mut self, fault_seed: u64) -> Self {
        self.fault_seed = Some(fault_seed);
        self
    }

    /// Sets the traffic rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Shrinks the measurement budget (used by tests and smoke runs).
    pub fn quick(mut self, measured: u64, warmup: u64) -> Self {
        self.measured_messages = measured;
        self.warmup_messages = warmup;
        self
    }

    /// Switches to the paper's full measurement budget: 10,000 warm-up
    /// messages and 90,000 measured messages per point.
    pub fn paper_scale(mut self) -> Self {
        self.warmup_messages = 10_000;
        self.measured_messages = 90_000;
        self.max_cycles = 2_000_000;
        self
    }

    /// Number of nodes of the configured topology.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// The low-level simulator configuration for this experiment.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_topology(
            self.topology.clone(),
            self.virtual_channels,
            self.message_length,
            self.rate,
        );
        cfg.buffer_depth = self.buffer_depth;
        cfg.warmup_messages = self.warmup_messages;
        cfg.stop = StopCondition::MeasuredMessages(self.measured_messages);
        cfg.max_cycles = self.max_cycles;
        cfg.seed = self.seed;
        cfg
    }

    /// Runs the experiment and returns its outcome.
    pub fn run(&self) -> Result<ExperimentOutcome, ExperimentError> {
        let net = self.topology.build().map_err(ExperimentError::Topology)?;
        // Fault placement uses a dedicated RNG stream (derived from the fault
        // seed if pinned, otherwise from the run seed) so the same faults are
        // applied to both routing flavours of a comparison.
        let mut fault_rng =
            StdRng::seed_from_u64(self.fault_seed.unwrap_or(self.seed) ^ 0xFA17_5EED);
        let faults = self.faults.realize(&net, &mut fault_rng)?;
        let fault_count = faults.num_faulty_nodes();
        let mut sim = Simulation::new(self.sim_config(), faults, self.routing.algorithm())?;
        let outcome = sim.run();
        Ok(ExperimentOutcome {
            config: self.clone(),
            fault_count,
            report: outcome.report,
            hit_max_cycles: outcome.hit_max_cycles,
            forced_absorptions: outcome.forced_absorptions,
            dropped_messages: outcome.dropped_messages,
            message_table_peak: outcome.message_table_peak,
        })
    }
}

/// Result of one experiment point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// The configuration that produced this outcome.
    pub config: ExperimentConfig,
    /// Number of faulty nodes actually applied.
    pub fault_count: usize,
    /// Metrics report of the run.
    pub report: SimulationReport,
    /// True if the run stopped at the cycle cap (saturated point).
    pub hit_max_cycles: bool,
    /// Watchdog absorptions (expected 0).
    pub forced_absorptions: u64,
    /// Dropped messages (expected 0).
    pub dropped_messages: u64,
    /// Peak occupancy of the simulator's message table. Bounded by the
    /// in-flight population (the table reclaims delivered entries), so long
    /// saturation searches no longer grow memory with delivered traffic.
    #[serde(default)]
    pub message_table_peak: u64,
}

impl ExperimentOutcome {
    /// Short label combining message length and fault count, the curve legend
    /// format used by Figs. 3 and 4 ("M=32, nf=5").
    pub fn curve_label(&self) -> String {
        format!("M={}, nf={}", self.config.message_length, self.fault_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = ExperimentConfig::paper_point(8, 2, 6, 32, 0.004)
            .with_routing(RoutingChoice::Adaptive)
            .with_faults(FaultScenario::RandomNodes { count: 3 })
            .with_seed(7)
            .with_rate(0.006)
            .quick(500, 100);
        assert_eq!(cfg.routing, RoutingChoice::Adaptive);
        assert_eq!(cfg.rate, 0.006);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.measured_messages, 500);
        assert_eq!(cfg.num_nodes(), 64);
        let sim_cfg = cfg.sim_config();
        assert_eq!(sim_cfg.stop, StopCondition::MeasuredMessages(500));
        assert_eq!(sim_cfg.virtual_channels, 6);
    }

    #[test]
    fn paper_scale_budget() {
        let cfg = ExperimentConfig::paper_point(8, 2, 4, 32, 0.004).paper_scale();
        assert_eq!(cfg.warmup_messages, 10_000);
        assert_eq!(cfg.measured_messages, 90_000);
    }

    #[test]
    fn run_fault_free_point() {
        let cfg = ExperimentConfig::paper_point(4, 2, 4, 8, 0.01).quick(400, 100);
        let out = cfg.run().unwrap();
        assert_eq!(out.fault_count, 0);
        assert!(!out.hit_max_cycles);
        assert!(out.report.mean_latency >= 8.0);
        assert_eq!(out.report.messages_queued, 0);
        assert_eq!(out.curve_label(), "M=8, nf=0");
        assert!(out.message_table_peak > 0);
        assert!(
            out.message_table_peak < out.report.generated_messages,
            "reclaiming table: peak {} must stay below the generated total {}",
            out.message_table_peak,
            out.report.generated_messages
        );
    }

    #[test]
    fn run_faulty_point_with_both_flavors() {
        for routing in RoutingChoice::BOTH {
            let cfg = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
                .with_routing(routing)
                .with_faults(FaultScenario::RandomNodes { count: 5 })
                .quick(300, 100);
            let out = cfg.run().unwrap();
            assert_eq!(out.fault_count, 5);
            assert_eq!(out.dropped_messages, 0);
            assert_eq!(out.forced_absorptions, 0);
        }
    }

    #[test]
    fn pinned_fault_seed_gives_identical_placements_across_traffic_seeds() {
        let base = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
            .with_faults(FaultScenario::RandomNodes { count: 5 })
            .with_fault_seed(123)
            .quick(150, 50);
        let a = base.clone().with_seed(1).run().unwrap();
        let b = base.with_seed(2).run().unwrap();
        assert_eq!(a.fault_count, b.fault_count);
        // Different traffic seeds must still change the measured latency.
        assert_ne!(a.report.mean_latency, b.report.mean_latency);
    }

    #[test]
    fn same_seed_same_faults_across_flavors() {
        let base = ExperimentConfig::paper_point(8, 2, 6, 16, 0.003)
            .with_faults(FaultScenario::RandomNodes { count: 4 })
            .quick(200, 50);
        let det = base
            .clone()
            .with_routing(RoutingChoice::Deterministic)
            .run()
            .unwrap();
        let ada = base.with_routing(RoutingChoice::Adaptive).run().unwrap();
        assert_eq!(det.fault_count, ada.fault_count);
    }

    #[test]
    fn invalid_configuration_reports_error() {
        let cfg = ExperimentConfig::paper_point(1, 2, 4, 8, 0.01);
        assert!(matches!(cfg.run(), Err(ExperimentError::Topology(_))));
        let cfg = ExperimentConfig::paper_point(8, 2, 4, 8, 0.01)
            .with_faults(FaultScenario::RandomNodes { count: 64 });
        assert!(matches!(cfg.run(), Err(ExperimentError::Faults(_))));
        let mut cfg =
            ExperimentConfig::paper_point(8, 2, 4, 8, 0.01).with_routing(RoutingChoice::Adaptive);
        cfg.virtual_channels = 2;
        assert!(matches!(cfg.run(), Err(ExperimentError::Sim(_))));
    }

    #[test]
    fn mesh_and_hypercube_points_run_end_to_end() {
        let mesh = ExperimentConfig::mesh_point(4, 2, 2, 8, 0.008).quick(300, 100);
        assert_eq!(mesh.topology, TopologySpec::mesh(4, 2));
        let out = mesh.run().unwrap();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
        assert!(out.report.mean_latency >= 8.0);

        let cube = ExperimentConfig::hypercube_point(5, 2, 8, 0.006)
            .with_routing(RoutingChoice::Adaptive)
            .quick(300, 100);
        assert_eq!(cube.num_nodes(), 32);
        let out = cube.run().unwrap();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
    }

    #[test]
    fn turn_model_runs_on_meshes_and_is_rejected_on_tori() {
        let mesh = ExperimentConfig::mesh_point(8, 2, 2, 16, 0.003)
            .with_routing(RoutingChoice::TurnModel)
            .with_faults(FaultScenario::RandomNodes { count: 3 })
            .quick(400, 100);
        let out = mesh.run().unwrap();
        assert_eq!(out.fault_count, 3);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.forced_absorptions, 0);
        assert!(!out.hit_max_cycles);

        let cube = ExperimentConfig::hypercube_point(5, 2, 8, 0.005)
            .with_routing(RoutingChoice::TurnModel)
            .quick(300, 100);
        assert!(cube.run().is_ok());

        // Wrapped dimensions reject the choice with a typed error, so torus
        // baselines can never silently run the wrong algorithm.
        let torus = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
            .with_routing(RoutingChoice::TurnModel)
            .quick(300, 100);
        assert!(matches!(
            torus.run(),
            Err(ExperimentError::Sim(
                torus_sim::SimConfigError::UnsupportedRouting { .. }
            ))
        ));
    }

    #[test]
    fn routing_choice_all_covers_every_variant() {
        assert_eq!(RoutingChoice::ALL.len(), 6);
        assert_eq!(RoutingChoice::TurnModel.label(), "turn-model");
        assert_eq!(RoutingChoice::UpDownDeterministic.label(), "updown-det");
        assert_eq!(RoutingChoice::UpDownAdaptive.label(), "updown");
        assert_eq!(
            RoutingChoice::UpDownDeterministic.algorithm(),
            torus_routing::AnyRouting::UpDown(torus_routing::UpDownRouting::deterministic())
        );
        assert_eq!(
            RoutingChoice::TurnModelDeterministic.label(),
            "turn-model-det"
        );
        assert_eq!(
            RoutingChoice::TurnModel.algorithm(),
            torus_routing::AnyRouting::TurnModel(torus_routing::TurnModelRouting::adaptive())
        );
        assert_eq!(
            RoutingChoice::TurnModelDeterministic.algorithm(),
            torus_routing::AnyRouting::TurnModel(torus_routing::TurnModelRouting::deterministic())
        );
    }

    #[test]
    fn routing_choice_parse_accepts_labels_and_aliases() {
        for choice in RoutingChoice::ALL {
            assert_eq!(RoutingChoice::parse(choice.label()), Ok(choice));
        }
        assert_eq!(
            RoutingChoice::parse("det"),
            Ok(RoutingChoice::Deterministic)
        );
        assert_eq!(RoutingChoice::parse("duato"), Ok(RoutingChoice::Adaptive));
        assert_eq!(
            RoutingChoice::parse("turnmodel"),
            Ok(RoutingChoice::TurnModel)
        );
        assert_eq!(
            RoutingChoice::parse("turnmodel-det"),
            Ok(RoutingChoice::TurnModelDeterministic)
        );
        assert_eq!(
            RoutingChoice::parse("up-down"),
            Ok(RoutingChoice::UpDownAdaptive)
        );
        assert_eq!(
            RoutingChoice::parse("up-down-det"),
            Ok(RoutingChoice::UpDownDeterministic)
        );
        assert!(RoutingChoice::parse("magic").is_err());
    }

    #[test]
    fn updown_runs_on_fat_trees_and_is_rejected_on_grids() {
        for (routing, v) in [
            (RoutingChoice::UpDownDeterministic, 1),
            (RoutingChoice::UpDownAdaptive, 2),
        ] {
            let cfg = ExperimentConfig::topology_point(TopologySpec::fat_tree(4, 2), v, 8, 0.01)
                .with_routing(routing)
                .quick(300, 100);
            let out = cfg.run().unwrap();
            assert!(!out.hit_max_cycles);
            assert_eq!(out.dropped_messages, 0);
            assert_eq!(out.forced_absorptions, 0);
            assert!(out.report.mean_latency >= 8.0);
        }

        let torus = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
            .with_routing(RoutingChoice::UpDownDeterministic)
            .quick(200, 50);
        assert!(matches!(
            torus.run(),
            Err(ExperimentError::Sim(
                torus_sim::SimConfigError::UnsupportedRouting { .. }
            ))
        ));
    }

    #[test]
    fn faulted_fat_tree_point_routes_around_the_failure() {
        for routing in [
            RoutingChoice::UpDownDeterministic,
            RoutingChoice::UpDownAdaptive,
        ] {
            let cfg = ExperimentConfig::topology_point(TopologySpec::fat_tree(4, 2), 2, 8, 0.008)
                .with_routing(routing)
                .with_faults(FaultScenario::RandomNodes { count: 1 })
                .quick(250, 50);
            let out = cfg.run().unwrap();
            assert_eq!(out.fault_count, 1);
            assert_eq!(out.dropped_messages, 0);
        }
    }

    #[test]
    fn deterministic_turn_model_runs_at_one_vc_on_meshes() {
        let cfg = ExperimentConfig::mesh_point(8, 2, 1, 16, 0.003)
            .with_routing(RoutingChoice::TurnModelDeterministic)
            .with_faults(FaultScenario::RandomNodes { count: 3 })
            .quick(300, 100);
        let out = cfg.run().unwrap();
        assert_eq!(out.fault_count, 3);
        assert_eq!(out.dropped_messages, 0);

        // Rejected on wrapped dimensions exactly like the adaptive flavour.
        let torus = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
            .with_routing(RoutingChoice::TurnModelDeterministic)
            .quick(200, 50);
        assert!(matches!(
            torus.run(),
            Err(ExperimentError::Sim(
                torus_sim::SimConfigError::UnsupportedRouting { .. }
            ))
        ));
    }

    #[test]
    fn with_topology_switches_the_shape() {
        let cfg = ExperimentConfig::paper_point(8, 2, 4, 16, 0.004)
            .with_topology(TopologySpec::mixed(vec![4, 4, 3], vec![true, true, false]));
        assert_eq!(cfg.num_nodes(), 48);
        assert_eq!(cfg.topology.kind(), "mixed");
        assert_eq!(cfg.sim_config().topology, cfg.topology);
    }

    #[test]
    fn topology_spec_round_trips_through_its_string_form() {
        // The serde derives are compile-checked; the spec-string round trip
        // is the runtime-verifiable serialisation this workspace ships
        // (the vendored serde has no concrete format backend).
        for cfg in [
            ExperimentConfig::paper_point(8, 2, 4, 16, 0.004),
            ExperimentConfig::mesh_point(4, 3, 2, 8, 0.002),
            ExperimentConfig::hypercube_point(6, 2, 8, 0.002),
            ExperimentConfig::paper_point(8, 2, 4, 16, 0.004)
                .with_topology(TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false])),
        ] {
            let s = cfg.topology.to_spec_string();
            let parsed = TopologySpec::parse(&s).unwrap();
            assert_eq!(parsed, cfg.topology, "{s}");
            assert_eq!(cfg.clone().with_topology(parsed), cfg);
        }
    }

    #[test]
    fn labels() {
        use torus_faults::RandomFaultError;
        assert_eq!(RoutingChoice::Deterministic.label(), "deterministic");
        assert_eq!(RoutingChoice::Adaptive.label(), "adaptive");
        let err = ExperimentError::Faults(FaultScenarioError::Random(
            RandomFaultError::TooManyFaults {
                requested: 10,
                nodes: 4,
            },
        ));
        assert!(format!("{err}").contains("fault scenario"));
    }
}
