//! Pinning and smoke tests for the topology-parameterised figure pipeline.
//!
//! The default (no-override) figure grids must stay bit-identical to the
//! paper reproduction: every outcome is a deterministic function of its
//! `ExperimentConfig` (seeds included) and of the panel/curve labels the CSV
//! embeds, so digesting the full grid pins the CSV output without paying for
//! the simulations. The digests below were captured from the grids that
//! produced the pre-refactor torus CSVs (verified bit-identical binary
//! output), and must only change when a PR *intends* to change the figures.

use swbft_core::{Figure, FigureOptions, RoutingChoice, Scale};
use torus_topology::TopologySpec;

/// FNV-1a over the debug rendering of the figure's labels and point configs.
fn grid_digest(figure: Figure, opts: &FigureOptions) -> u64 {
    let labels = figure.grid_labels(opts).expect("grid builds");
    let configs = figure.point_configs(opts).expect("grid builds");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in format!("{labels:?}|{configs:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn default_quick_grids_are_pinned() {
    let expected = [
        (Figure::Fig3, 0x45b6a8b0e077aa4du64),
        (Figure::Fig4, 0xeabcfc1542e41784u64),
        (Figure::Fig5, 0x5cea26c5c7549a04u64),
        (Figure::Fig6, 0x0205aefa0d67b24au64),
        (Figure::Fig7, 0x6b6a35b639ad7cb9u64),
    ];
    for (figure, digest) in expected {
        assert_eq!(
            grid_digest(figure, &FigureOptions::new(Scale::Quick)),
            digest,
            "{}: the default quick-scale grid changed — the figure CSVs are no \
             longer bit-identical to the paper reproduction",
            figure.id()
        );
    }
}

#[test]
fn default_paper_grids_are_pinned() {
    let expected = [
        (Figure::Fig3, 0xa8c214793ddee559u64),
        (Figure::Fig4, 0xf3a544bb4fe6eb2au64),
        (Figure::Fig5, 0xbd214c7b1df1009du64),
        (Figure::Fig6, 0x2c8138ac93bd3bbfu64),
        (Figure::Fig7, 0xfa61e585f8fba175u64),
    ];
    for (figure, digest) in expected {
        assert_eq!(
            grid_digest(figure, &FigureOptions::new(Scale::Paper)),
            digest,
            "{}: the default paper-scale grid changed",
            figure.id()
        );
    }
}

#[test]
fn topology_override_only_rewrites_the_topology() {
    // The mesh grid differs from the torus grid in topology (and panel
    // titles) only: same length, same seeds, same budgets.
    let torus = Figure::Fig7
        .point_configs(&FigureOptions::new(Scale::Quick))
        .unwrap();
    let mesh = Figure::Fig7
        .point_configs(&FigureOptions::new(Scale::Quick).with_topology(TopologySpec::mesh(8, 2)))
        .unwrap();
    assert_eq!(torus.len(), mesh.len());
    for (t, m) in torus.iter().zip(&mesh) {
        assert_eq!(m.topology, TopologySpec::mesh(8, 2));
        assert_eq!(t.seed, m.seed);
        assert_eq!(t.fault_seed, m.fault_seed);
        assert_eq!(t.rate, m.rate);
        assert_eq!(t.virtual_channels, m.virtual_channels);
        assert_eq!(t.routing, m.routing);
    }
}

#[test]
fn fig3_smoke_runs_on_a_mesh_under_the_deterministic_turn_model() {
    let res = Figure::Fig3
        .run_with(
            &FigureOptions::new(Scale::Smoke)
                .with_topology(TopologySpec::mesh(8, 2))
                .with_routing(RoutingChoice::TurnModelDeterministic),
        )
        .expect("mesh fig3 runs");
    assert!(res.failures.is_empty(), "failures: {:?}", res.failures);
    // One routing × 3 V panels, 2 M × 3 nf curves, 3 rate points.
    assert_eq!(res.panels.len(), 3);
    assert_eq!(res.num_points(), 3 * 6 * 3);
    assert!(res.panels[0].title.contains("8-ary 2-mesh"));
    assert!(res.panels[0].title.contains("Turn-model-det"));
    let csv = res.to_csv();
    assert!(csv.contains("8-ary 2-mesh"));
    // Every point measured a real latency.
    for panel in &res.panels {
        for curve in &panel.curves {
            for p in &curve.points {
                assert!(p.report.mean_latency > 0.0 || p.saturated);
            }
        }
    }
}

#[test]
fn fig6_smoke_runs_on_a_hypercube() {
    let res = Figure::Fig6
        .run_with(
            &FigureOptions::new(Scale::Smoke)
                .with_topology(TopologySpec::hypercube(6))
                .with_routing(RoutingChoice::Adaptive),
        )
        .expect("hypercube fig6 runs");
    assert!(res.failures.is_empty(), "failures: {:?}", res.failures);
    assert_eq!(res.panels.len(), 1);
    assert!(res.panels[0].title.contains("6-hypercube"));
    // One curve (adaptive), smoke fault counts 0/4/8.
    assert_eq!(res.panels[0].curves.len(), 1);
    let xs: Vec<f64> = res.panels[0].curves[0].points.iter().map(|p| p.x).collect();
    assert_eq!(xs, vec![0.0, 4.0, 8.0]);
}
