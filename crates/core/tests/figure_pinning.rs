//! Pinning and smoke tests for the topology-parameterised figure pipeline.
//!
//! The default (no-override) figure grids must stay bit-identical to the
//! paper reproduction: every outcome is a deterministic function of its
//! `ExperimentConfig` (seeds included) and of the panel/curve labels the CSV
//! embeds, so digesting the full grid pins the CSV output without paying for
//! the simulations. The digests below were captured from the grids that
//! produced the pre-refactor torus CSVs (verified bit-identical binary
//! output), and must only change when a PR *intends* to change the figures.

use swbft_core::{
    estimate_saturation_rate, run_pool, ExperimentConfig, Figure, FigureOptions, Jobs,
    RoutingChoice, SaturationSearch, Scale,
};
use torus_faults::FaultScenario;
use torus_topology::TopologySpec;

/// FNV-1a over the debug rendering of the figure's labels and point configs.
fn grid_digest(figure: Figure, opts: &FigureOptions) -> u64 {
    let labels = figure.grid_labels(opts).expect("grid builds");
    let configs = figure.point_configs(opts).expect("grid builds");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in format!("{labels:?}|{configs:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn default_quick_grids_are_pinned() {
    let expected = [
        (Figure::Fig3, 0x45b6a8b0e077aa4du64),
        (Figure::Fig4, 0xeabcfc1542e41784u64),
        (Figure::Fig5, 0x5cea26c5c7549a04u64),
        (Figure::Fig6, 0x0205aefa0d67b24au64),
        (Figure::Fig7, 0x6b6a35b639ad7cb9u64),
    ];
    for (figure, digest) in expected {
        assert_eq!(
            grid_digest(figure, &FigureOptions::new(Scale::Quick)),
            digest,
            "{}: the default quick-scale grid changed — the figure CSVs are no \
             longer bit-identical to the paper reproduction",
            figure.id()
        );
    }
}

#[test]
fn default_paper_grids_are_pinned() {
    let expected = [
        (Figure::Fig3, 0xa8c214793ddee559u64),
        (Figure::Fig4, 0xf3a544bb4fe6eb2au64),
        (Figure::Fig5, 0xbd214c7b1df1009du64),
        (Figure::Fig6, 0x2c8138ac93bd3bbfu64),
        (Figure::Fig7, 0xfa61e585f8fba175u64),
    ];
    for (figure, digest) in expected {
        assert_eq!(
            grid_digest(figure, &FigureOptions::new(Scale::Paper)),
            digest,
            "{}: the default paper-scale grid changed",
            figure.id()
        );
    }
}

#[test]
fn topology_override_only_rewrites_the_topology() {
    // The mesh grid differs from the torus grid in topology (and panel
    // titles) only: same length, same seeds, same budgets.
    let torus = Figure::Fig7
        .point_configs(&FigureOptions::new(Scale::Quick))
        .unwrap();
    let mesh = Figure::Fig7
        .point_configs(&FigureOptions::new(Scale::Quick).with_topology(TopologySpec::mesh(8, 2)))
        .unwrap();
    assert_eq!(torus.len(), mesh.len());
    for (t, m) in torus.iter().zip(&mesh) {
        assert_eq!(m.topology, TopologySpec::mesh(8, 2));
        assert_eq!(t.seed, m.seed);
        assert_eq!(t.fault_seed, m.fault_seed);
        assert_eq!(t.rate, m.rate);
        assert_eq!(t.virtual_channels, m.virtual_channels);
        assert_eq!(t.routing, m.routing);
    }
}

#[test]
fn fig3_smoke_runs_on_a_mesh_under_the_deterministic_turn_model() {
    let res = Figure::Fig3
        .run_with(
            &FigureOptions::new(Scale::Smoke)
                .with_topology(TopologySpec::mesh(8, 2))
                .with_routing(RoutingChoice::TurnModelDeterministic),
        )
        .expect("mesh fig3 runs");
    assert!(res.failures.is_empty(), "failures: {:?}", res.failures);
    // One routing × 3 V panels, 2 M × 3 nf curves, 3 rate points.
    assert_eq!(res.panels.len(), 3);
    assert_eq!(res.num_points(), 3 * 6 * 3);
    assert!(res.panels[0].title.contains("8-ary 2-mesh"));
    assert!(res.panels[0].title.contains("Turn-model-det"));
    let csv = res.to_csv();
    assert!(csv.contains("8-ary 2-mesh"));
    // Every point measured a real latency.
    for panel in &res.panels {
        for curve in &panel.curves {
            for p in &curve.points {
                assert!(p.report.mean_latency > 0.0 || p.saturated);
            }
        }
    }
}

#[test]
fn fat_tree_smoke_grid_is_pinned_and_runs_under_up_down_routing() {
    // The fat-tree figure grid is deterministic too: pin its digest so the
    // indirect-network CSVs only change when a PR intends them to.
    let opts = FigureOptions::new(Scale::Smoke)
        .with_topology(TopologySpec::fat_tree(4, 2))
        .with_routing(RoutingChoice::UpDownDeterministic);
    assert_eq!(
        grid_digest(Figure::Fig3, &opts),
        0x09a31976042563bfu64,
        "fig3: the fat-tree smoke-scale grid changed"
    );
    let res = Figure::Fig3.run_with(&opts).expect("fat-tree fig3 runs");
    assert!(res.failures.is_empty(), "failures: {:?}", res.failures);
    assert!(res.num_points() > 0);
    assert!(res.panels[0].title.contains("4-ary 2-level fat-tree"));
    assert!(res.to_csv().contains("4-ary 2-level fat-tree"));
    for panel in &res.panels {
        for curve in &panel.curves {
            for p in &curve.points {
                assert!(p.report.mean_latency > 0.0 || p.saturated);
            }
        }
    }
}

/// The parallel-determinism guarantee of the experiment pool, on a real
/// quick-scale figure grid: the assembled result — structure, CSV bytes and
/// rendered text — is identical at `--jobs 1` and `--jobs 4`. The grid is
/// deliberately small (a 4-hypercube under one routing) so the quick-scale
/// budgets stay test-sized; the cells where the connectivity-preserving fault
/// sampler cannot place the requested fault count become typed point
/// failures, which must be identically ordered too.
///
/// Ignored by default: quick-scale budgets take minutes in debug builds with
/// the sanitizer on. CI runs it in release
/// (`cargo test --release -p swbft-core --test figure_pinning -- --ignored`);
/// the smoke-scale determinism tests below cover the same code path in the
/// default test run.
#[test]
#[ignore = "quick-scale grid: run explicitly (CI runs it in release)"]
fn quick_scale_figure_is_identical_at_jobs_1_and_4() {
    let opts = |jobs| {
        FigureOptions::new(Scale::Quick)
            .with_topology(TopologySpec::hypercube(4))
            .with_routing(RoutingChoice::Adaptive)
            .with_jobs(jobs)
    };
    let serial = Figure::Fig6.run_with(&opts(Jobs::serial())).unwrap();
    let parallel = Figure::Fig6.run_with(&opts(Jobs::count(4))).unwrap();
    assert!(serial.num_points() > 0, "some quick-scale points must run");
    assert_eq!(serial, parallel, "quick-scale fig6 diverged across --jobs");
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.render_text(), parallel.render_text());
}

/// Saturation searches fanned over the pool (the `saturation` binary's
/// parallelism) are identical at `--jobs 1` and `--jobs 4`: each search is a
/// sequential probe chain that owns its seeds, so only the fan-out order
/// differs.
#[test]
fn saturation_searches_are_identical_at_jobs_1_and_4() {
    let cells: Vec<(RoutingChoice, usize)> = vec![
        (RoutingChoice::Deterministic, 0),
        (RoutingChoice::Deterministic, 2),
        (RoutingChoice::Adaptive, 0),
        (RoutingChoice::Adaptive, 2),
    ];
    let search = SaturationSearch {
        max_simulations: 6,
        ..SaturationSearch::default()
    };
    let run = |jobs| {
        run_pool(cells.clone(), jobs, |&(routing, nf)| {
            let faults = if nf == 0 {
                FaultScenario::None
            } else {
                FaultScenario::RandomNodes { count: nf }
            };
            let mut cfg = ExperimentConfig::paper_point(4, 2, 4, 8, 0.001)
                .with_routing(routing)
                .with_faults(faults)
                .with_fault_seed(2006 + nf as u64)
                .quick(400, 100);
            cfg.max_cycles = 150_000;
            estimate_saturation_rate(&cfg, search).map_err(|e| e.to_string())
        })
    };
    let serial = run(Jobs::serial());
    let parallel = run(Jobs::count(4));
    assert_eq!(serial.len(), 4);
    assert_eq!(
        serial, parallel,
        "saturation estimates diverged across --jobs"
    );
    assert!(serial.iter().all(Result::is_ok));
}

/// Failure ordering under parallel execution: a fig5 grid where every point
/// fails (the paper's regions cannot fit a radix-2 hypercube) produces the
/// same failure list — same order, same contents — at any jobs count.
#[test]
fn multi_failure_fig5_grid_has_deterministic_failure_order() {
    let opts = |jobs| {
        FigureOptions::new(Scale::Smoke)
            .with_topology(TopologySpec::hypercube(4))
            .with_routing(RoutingChoice::Adaptive)
            .with_jobs(jobs)
    };
    let serial = Figure::Fig5.run_with(&opts(Jobs::serial())).unwrap();
    let parallel = Figure::Fig5.run_with(&opts(Jobs::count(4))).unwrap();
    assert_eq!(serial.num_points(), 0);
    assert!(
        serial.failures.len() > 1,
        "the grid must produce multiple failures"
    );
    assert_eq!(serial.failures, parallel.failures);
    assert_eq!(serial.render_text(), parallel.render_text());
    // The failure list follows grid-enumeration order: within one curve the
    // rate points appear in increasing x.
    for pair in serial
        .failures
        .windows(2)
        .filter(|w| w[0].curve == w[1].curve)
    {
        assert!(pair[0].x <= pair[1].x);
    }
}

#[test]
fn fig6_smoke_runs_on_a_hypercube() {
    let res = Figure::Fig6
        .run_with(
            &FigureOptions::new(Scale::Smoke)
                .with_topology(TopologySpec::hypercube(6))
                .with_routing(RoutingChoice::Adaptive),
        )
        .expect("hypercube fig6 runs");
    assert!(res.failures.is_empty(), "failures: {:?}", res.failures);
    assert_eq!(res.panels.len(), 1);
    assert!(res.panels[0].title.contains("6-hypercube"));
    // One curve (adaptive), smoke fault counts 0/4/8.
    assert_eq!(res.panels[0].curves.len(), 1);
    let xs: Vec<f64> = res.panels[0].curves[0].points.iter().map(|p| p.x).collect();
    assert_eq!(xs, vec![0.0, 4.0, 8.0]);
}
