//! The analytical latency model.

use serde::{Deserialize, Serialize};
use torus_topology::TopologySpec;

/// Parameters of the analytical model (mirrors the simulator's configuration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyticConfig {
    /// The network topology (torus / mesh / hypercube / mixed-radix).
    pub topology: TopologySpec,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: u32,
    /// Number of faulty nodes (assumed uniformly scattered).
    pub faulty_nodes: usize,
    /// Router decision time `Td` in cycles.
    pub router_delay: u32,
    /// Software re-injection overhead `Δ` in cycles.
    pub reinjection_delay: u32,
}

impl AnalyticConfig {
    /// Configuration matching the paper's default assumptions (`Td = Δ = 0`)
    /// on a k-ary n-cube.
    pub fn paper(
        radix: u16,
        dims: u32,
        v: usize,
        message_length: u32,
        faulty_nodes: usize,
    ) -> Self {
        Self::paper_topology(
            TopologySpec::torus(radix, dims),
            v,
            message_length,
            faulty_nodes,
        )
    }

    /// Configuration matching the paper's default assumptions on an arbitrary
    /// topology.
    pub fn paper_topology(
        topology: TopologySpec,
        v: usize,
        message_length: u32,
        faulty_nodes: usize,
    ) -> Self {
        AnalyticConfig {
            topology,
            virtual_channels: v,
            message_length,
            faulty_nodes,
            router_delay: 0,
            reinjection_delay: 0,
        }
    }
}

/// Break-down of the predicted mean latency into its additive components.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Header routing time: `d̄ · (1 + Td)` cycles.
    pub routing: f64,
    /// Message serialisation time: `M` cycles.
    pub serialization: f64,
    /// Total expected contention (blocking) time over the whole path.
    pub contention: f64,
    /// Expected extra cost of fault absorptions and software re-injections.
    pub fault_penalty: f64,
}

impl LatencyBreakdown {
    /// Total predicted mean latency in cycles.
    pub fn total(&self) -> f64 {
        self.routing + self.serialization + self.contention + self.fault_penalty
    }
}

/// The analytical mean-latency model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    config: AnalyticConfig,
    avg_distance: f64,
    num_nodes: usize,
    /// Mean number of *existing* network channels per node (2n on a torus,
    /// less on meshes whose edge nodes are missing outward channels).
    channels_per_node: f64,
}

impl AnalyticModel {
    /// Builds the model, deriving the average distance and channel density
    /// from the topology.
    pub fn new(config: AnalyticConfig) -> Result<Self, torus_topology::NetworkError> {
        let net = config.topology.build()?;
        Ok(AnalyticModel {
            avg_distance: net.average_distance(),
            num_nodes: net.num_nodes(),
            channels_per_node: net.num_channels() as f64 / net.num_nodes() as f64,
            config,
        })
    }

    /// The configuration of the model.
    pub fn config(&self) -> &AnalyticConfig {
        &self.config
    }

    /// Mean minimal distance `d̄` between two distinct nodes.
    pub fn average_distance(&self) -> f64 {
        self.avg_distance
    }

    /// Utilisation `ρ` of a network channel at offered load `rate`
    /// (messages/node/cycle).
    pub fn channel_utilization(&self, rate: f64) -> f64 {
        rate * self.avg_distance * self.config.message_length as f64 / self.channels_per_node
    }

    /// The offered load at which the channel utilisation reaches 1 — the
    /// model's saturation estimate (messages/node/cycle).
    pub fn saturation_rate(&self) -> f64 {
        self.channels_per_node / (self.avg_distance * self.config.message_length as f64)
    }

    /// Probability that a message encounters at least one faulty router among
    /// the intermediate nodes of its (average-length) path, with faults
    /// scattered uniformly.
    pub fn fault_encounter_probability(&self) -> f64 {
        if self.config.faulty_nodes == 0 {
            return 0.0;
        }
        let healthy_fraction = 1.0 - self.config.faulty_nodes as f64 / self.num_nodes as f64;
        // Intermediate routers on the path (excluding source and destination).
        let intermediates = (self.avg_distance - 1.0).max(0.0);
        1.0 - healthy_fraction.powf(intermediates)
    }

    /// Predicted mean latency break-down at offered load `rate`; `None` when
    /// the load is at or beyond the model's saturation estimate (the M/D/1
    /// waiting time diverges there).
    pub fn latency_breakdown(&self, rate: f64) -> Option<LatencyBreakdown> {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be non-negative");
        let m = self.config.message_length as f64;
        let rho = self.channel_utilization(rate);
        if rho >= 1.0 {
            return None;
        }
        // M/D/1 waiting time per hop, discounted by the virtual-channel
        // flexibility.
        let per_hop_wait = rho * m / (2.0 * (1.0 - rho)) / self.config.virtual_channels as f64;
        let routing = self.avg_distance * (1.0 + self.config.router_delay as f64);
        let contention = self.avg_distance * per_hop_wait;
        // Fault penalty: expected absorptions × (re-serialisation + Δ + detour).
        let p_fault = self.fault_encounter_probability();
        let detour_hops = self.avg_distance / 2.0;
        let fault_penalty = p_fault
            * (m + self.config.reinjection_delay as f64 + detour_hops * (1.0 + per_hop_wait));
        Some(LatencyBreakdown {
            routing,
            serialization: m,
            contention,
            fault_penalty,
        })
    }

    /// Predicted mean latency in cycles (`None` at or beyond saturation).
    pub fn mean_latency(&self, rate: f64) -> Option<f64> {
        self.latency_breakdown(rate).map(|b| b.total())
    }

    /// Predicted latency curve over a grid of offered loads (saturated points
    /// are omitted).
    pub fn latency_curve(&self, rates: &[f64]) -> Vec<(f64, f64)> {
        rates
            .iter()
            .filter_map(|&r| self.mean_latency(r).map(|l| (r, l)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(v: usize, m: u32, nf: usize) -> AnalyticModel {
        AnalyticModel::new(AnalyticConfig::paper(8, 2, v, m, nf)).unwrap()
    }

    #[test]
    fn zero_load_latency_is_distance_plus_serialization() {
        let m = model(6, 32, 0);
        let b = m.latency_breakdown(0.0).unwrap();
        assert!((b.routing - m.average_distance()).abs() < 1e-9);
        assert_eq!(b.serialization, 32.0);
        assert_eq!(b.contention, 0.0);
        assert_eq!(b.fault_penalty, 0.0);
        assert!((b.total() - (m.average_distance() + 32.0)).abs() < 1e-9);
    }

    #[test]
    fn latency_is_monotonic_in_load() {
        let m = model(6, 32, 0);
        let rates: Vec<f64> = (0..20).map(|i| i as f64 * 0.0005).collect();
        let curve = m.latency_curve(&rates);
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn diverges_at_saturation() {
        let m = model(6, 32, 0);
        let sat = m.saturation_rate();
        assert!(m.mean_latency(sat).is_none());
        assert!(m.mean_latency(sat * 1.5).is_none());
        let near = m.mean_latency(sat * 0.98).unwrap();
        let mid = m.mean_latency(sat * 0.5).unwrap();
        assert!(near > 3.0 * mid, "latency must blow up near saturation");
    }

    #[test]
    fn saturation_rate_reasonable_for_paper_configs() {
        // 8-ary 2-cube, M=32: 2n/(d_avg*M) with d_avg≈4.06 -> ≈0.031; the
        // simulated saturation (with VC and protocol overheads) is lower but
        // the same order of magnitude as the paper's 0.012-0.02 range.
        let m = model(6, 32, 0);
        let sat = m.saturation_rate();
        assert!(sat > 0.02 && sat < 0.05, "saturation {sat}");
        // Longer messages saturate earlier.
        assert!(model(6, 64, 0).saturation_rate() < sat);
    }

    #[test]
    fn more_virtual_channels_reduce_contention() {
        let rate = 0.01;
        let low_v = model(4, 32, 0).latency_breakdown(rate).unwrap().contention;
        let high_v = model(10, 32, 0).latency_breakdown(rate).unwrap().contention;
        assert!(high_v < low_v);
    }

    #[test]
    fn faults_add_latency() {
        let rate = 0.006;
        let clean = model(6, 32, 0).mean_latency(rate).unwrap();
        let faulty = model(6, 32, 5).mean_latency(rate).unwrap();
        assert!(faulty > clean);
        let very_faulty = model(6, 32, 12).mean_latency(rate).unwrap();
        assert!(very_faulty > faulty);
    }

    #[test]
    fn fault_probability_bounds() {
        assert_eq!(model(6, 32, 0).fault_encounter_probability(), 0.0);
        let p = model(6, 32, 5).fault_encounter_probability();
        assert!(p > 0.0 && p < 1.0);
        // With most of the network faulty the probability approaches 1.
        let heavy = model(6, 32, 50).fault_encounter_probability();
        assert!(heavy > p);
    }

    #[test]
    fn longer_messages_cost_more() {
        let rate = 0.004;
        let short = model(6, 32, 0).mean_latency(rate).unwrap();
        let long = model(6, 64, 0).mean_latency(rate).unwrap();
        assert!(long > short + 30.0);
    }

    #[test]
    fn three_dimensional_model() {
        let m = AnalyticModel::new(AnalyticConfig::paper(8, 3, 10, 32, 12)).unwrap();
        assert!(m.average_distance() > 5.9 && m.average_distance() < 6.1);
        assert!(m.mean_latency(0.004).unwrap() > 38.0);
        assert!(m.saturation_rate() > 0.02);
    }

    #[test]
    fn mesh_saturates_earlier_than_torus() {
        // A mesh has longer average distances and fewer channels, so the
        // model must place its saturation point below the torus's.
        let torus = AnalyticModel::new(AnalyticConfig::paper(8, 2, 6, 32, 0)).unwrap();
        let mesh = AnalyticModel::new(AnalyticConfig::paper_topology(
            torus_topology::TopologySpec::mesh(8, 2),
            6,
            32,
            0,
        ))
        .unwrap();
        assert!(mesh.average_distance() > torus.average_distance());
        assert!(mesh.saturation_rate() < torus.saturation_rate());
        // And its low-load latency is higher (more hops on average).
        assert!(mesh.mean_latency(0.001).unwrap() > torus.mean_latency(0.001).unwrap());
    }

    #[test]
    fn hypercube_model_builds() {
        let h = AnalyticModel::new(AnalyticConfig::paper_topology(
            torus_topology::TopologySpec::hypercube(6),
            4,
            32,
            0,
        ))
        .unwrap();
        // Average distance of a binary n-cube is ~n/2 (exactly n/2 * N/(N-1)).
        assert!((h.average_distance() - 3.0 * 64.0 / 63.0).abs() < 1e-9);
        assert!(h.saturation_rate() > 0.0);
    }

    #[test]
    fn invalid_topology_is_rejected() {
        assert!(AnalyticModel::new(AnalyticConfig::paper(1, 2, 4, 32, 0)).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        model(4, 32, 0).mean_latency(-0.1);
    }
}
