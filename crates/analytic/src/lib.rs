//! # torus-analytic
//!
//! A first-order analytical mean-latency model for wormhole-switched k-ary
//! n-cubes under uniform traffic, extended with a fault term for the
//! Software-Based re-routing mechanism. The paper's conclusion names exactly
//! this as future work ("our next object is to develop an analytical modeling
//! approach to investigate the performance behavior of Software-Based
//! fault-tolerant routing"); this crate provides the standard starting point
//! against which the flit-level simulator can be sanity-checked.
//!
//! ## Model
//!
//! The model follows the classical open-network approximation used throughout
//! the k-ary n-cube literature (Dally; Agarwal; Draper & Ghosh; Ould-Khaoua):
//!
//! * a message of `M` flits travelling `d̄` hops needs `d̄ + M` cycles with no
//!   contention (one flit per channel per cycle, `Td = 0`);
//! * under uniform traffic each of the `2n` network channels of a node carries
//!   `λ·d̄ / (2n)` messages per cycle, so its utilisation is
//!   `ρ = λ·d̄·M / (2n)`;
//! * the mean waiting time per hop is approximated by an M/D/1 queue,
//!   `W = ρ·M / (2(1−ρ))`, divided by the number of virtual channels a message
//!   can choose from (the standard first-order account of virtual-channel
//!   flexibility: with `V` candidate VCs a blocked message waits roughly `1/V`
//!   of the single-channel waiting time);
//! * faults add, per message, an expected number of absorptions
//!   `E[a] = p_f` (the probability that at least one of its `d̄` intermediate
//!   routers is faulty) and each absorption costs one software re-injection:
//!   re-serialisation of the message (`M` cycles), the configured overhead
//!   `Δ`, and roughly half the original distance of extra hops (non-minimal
//!   detour).
//!
//! The result is a coarse model — it ignores higher-moment effects, adaptive
//! routing's load balancing and the detailed structure of fault regions — but
//! it reproduces the qualitative behaviour of the simulator (latency offset by
//! `d̄ + M` at low load, hyperbolic divergence at saturation, saturation rate
//! growing with `V` and shrinking with `M` and with the number of faults) and
//! serves as an independent cross-check of the simulation results.

pub mod model;

pub use model::{AnalyticConfig, AnalyticModel, LatencyBreakdown};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::model::{AnalyticConfig, AnalyticModel, LatencyBreakdown};
}
