//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, providing the one API this workspace uses: `crossbeam::channel`
//! unbounded MPMC channels with cloneable senders **and receivers**
//! (which `std::sync::mpsc` cannot offer).
//!
//! The implementation is a straightforward `Mutex<VecDeque>` + `Condvar`
//! queue — adequate for the sweep driver's coarse-grained work distribution,
//! where each task is an entire network simulation.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate, `Debug` must not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a channel with no receivers")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty channel with no senders")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        /// Fails once the channel is empty and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake all blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
        });
        drop(out_tx);
        drop(rx);
        let mut got: Vec<u32> = std::iter::from_fn(|| out_rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_after_last_receiver_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
