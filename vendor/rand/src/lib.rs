//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the API subset the workspace
//! uses — [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — on top of a small, fast,
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! It is **not** a drop-in replacement for the real crate (no `thread_rng`,
//! no distributions module, no fill APIs); it only promises determinism for a
//! given seed and reasonable statistical quality for simulation workloads.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`, which must be non-empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method,
/// widened multiply with rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng.next_u64()) * span;
        // Guard against rounding up to the (excluded) end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Unrelated to the real crate's ChaCha-based
    /// `StdRng`, but API- and determinism-compatible for our purposes.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers ([`SliceRandom`]).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: uniform element choice and Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=5u16);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<u8> = (0..1_000).map(|_| rng.gen_range(0..=3u8)).collect();
        for end in [0u8, 3u8] {
            assert!(samples.contains(&end));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
