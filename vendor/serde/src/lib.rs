//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serialises through serde yet — the derives exist so the
//! data model is ready for a real serialisation backend later. This stub
//! keeps the source compatible with real serde at zero cost:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits, blanket-implemented
//!   for every type;
//! * the `derive` re-exports are no-op proc macros that accept (and ignore)
//!   `#[serde(...)]` attributes.
//!
//! Swapping in the real crate later is a one-line `Cargo.toml` change; no
//! source edits are needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
