//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of Criterion's surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — as a simple
//! wall-clock timer: each benchmark is warmed up once, then timed over
//! `sample_size` batches, and the per-iteration mean / min / max are printed
//! as an aligned table.
//!
//! There is no statistical analysis, no plotting and no baseline storage;
//! the point is that `cargo bench` compiles, runs and prints comparable
//! numbers, and that swapping in real Criterion later needs no source edits.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions; registry of benchmark runs.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` (harness = false bench targets are still run as
        // tests) Criterion proper runs each bench exactly once; mirror that.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            default_sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self._criterion.test_mode;
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            test_mode,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    durations: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, running it `iters_per_sample` times per recorded
    /// sample (after one untimed warm-up call).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        if self.test_mode {
            return;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.durations.push(start.elapsed());
        }
    }
}

fn run_one<F>(name: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples,
        test_mode,
        durations: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if test_mode {
        println!("test {name} ... ok");
        return;
    }
    if bencher.durations.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .durations
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<48} mean {} (min {}, max {}, n={})",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        per_iter.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:8.3} s ")
    } else if seconds >= 1e-3 {
        format!("{:8.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:8.3} µs", seconds * 1e6)
    } else {
        format!("{:8.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
