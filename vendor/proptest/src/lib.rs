//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's surface this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`Strategy`] trait with `prop_map`, range / [`Just`] / tuple strategies,
//! [`any`], [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Semantics: each test body runs for `ProptestConfig::cases` randomly drawn
//! inputs from a deterministic per-test seed. Failures report the case
//! number; there is **no shrinking** — a failing case prints its inputs via
//! the panic message only. Swapping in real proptest later needs no source
//! edits.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Base RNG seed; each case derives its own stream from it.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            seed: 0x5EED_CAFE_F00D_0001,
        }
    }
}

impl ProptestConfig {
    /// Returns the default configuration with `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Number of cases this runner will execute.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic per-case RNG (splits the base seed by case index).
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy that always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws an unconstrained random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produces unconstrained values of `T` (stand-in for `proptest::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Uniform choice between several strategies with a common value type
/// (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Chooses uniformly between the given strategies (no weight syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Property-test assertion (panics with case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Skips the remainder of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that samples its inputs `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new($config);
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let run = || $body;
                    run();
                }
            }
        )*
    };
}

/// The usual glob-import surface: traits, constructors and macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
    /// Nested module mirroring `proptest::prelude::prop`.
    pub mod prop {}
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let runner = crate::TestRunner::new(ProptestConfig::with_cases(8));
        let strategy = (2u16..10, 1u32..4).prop_map(|(k, n)| (k as u64) * (n as u64));
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for_case(case);
            let v = strategy.sample(&mut rng);
            assert!((2..40).contains(&v), "v = {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end, including assume/assert.
        #[test]
        fn macro_smoke((a, b) in (0u32..100, 0u32..100), flip in any::<bool>()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo < hi);
            prop_assert_eq!(lo.min(hi), lo);
            let _ = flip;
        }

        #[test]
        fn oneof_covers_options(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }
}
