//! No-op derive macros backing the vendored `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` traits are blanket-implemented for
//! all types, so these derives validate nothing and emit nothing; they exist
//! so `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` field/container
//! attributes compile unchanged against the stub.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
