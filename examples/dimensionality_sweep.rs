//! The multidimensional network layer at work, along two axes:
//!
//! 1. **Dimensionality** — run the same Software-Based routing algorithm on
//!    2-, 3- and 4-dimensional tori (the paper's contribution is precisely
//!    this extension beyond 2-D);
//! 2. **Topology family** — run the *same* experiment (same fault region,
//!    same workload) on a torus, the matching mesh and a hypercube of equal
//!    node count, and compare latency and the saturation estimate. Wrap-around
//!    links halve the average distance, so the torus sustains a higher load
//!    before saturating; the mesh needs fewer virtual channels because no
//!    dateline class exists.
//!
//! `--topology <spec>` replaces the default torus/mesh/hypercube trio with a
//! single shape of your choice, and `--routing <choice>` swaps the adaptive
//! Software-Based algorithm for another one (shapes the algorithm rejects are
//! reported with the typed error instead of crashing).
//!
//! The saturation column comes from the simulation-based doubling+bisection
//! search at a deliberately small probe budget. Small budgets are safe now
//! that the search reports honest brackets: a budget exhausted before
//! bracketing shows up as an explicit `>=` bound instead of the midpoint of a
//! fictitious bracket (this example previously fell back to the analytic
//! model for exactly that reason).
//!
//! ```text
//! cargo run --release --example dimensionality_sweep
//!     [-- --topology 8x8x4o] [-- --routing turnmodel]
//! ```

use swbft::core::{estimate_saturation_rate, SaturationSearch};
use swbft::prelude::*;
use swbft::routing::RoutingAlgorithm;
use swbft::topology::TopologySpec;

fn main() {
    let mut routing = RoutingChoice::Adaptive;
    let mut custom: Option<TopologySpec> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--topology" => match TopologySpec::parse(&iter.next().unwrap_or_default()) {
                Ok(t) => custom = Some(t),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            "--routing" => match RoutingChoice::parse(&iter.next().unwrap_or_default()) {
                Ok(r) => routing = r,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: dimensionality_sweep [--topology <spec>] [--routing <choice>]"
                );
                std::process::exit(2);
            }
        }
    }

    // ---- axis 1: dimensionality (tori of comparable size) ----
    // Skipped when the chosen routing cannot run on tori (the turn models).
    let networks: [(u16, u32); 3] = [(8, 2), (4, 3), (4, 4)];
    let rate = 0.004;
    let torus_capable = routing
        .algorithm()
        .supported_on(&TopologySpec::torus(8, 2).build().expect("valid topology"))
        .is_ok();
    if torus_capable {
        println!(
            "Software-Based {} routing, M=32, V=6, lambda={rate}, 3 random node faults\n",
            routing.label()
        );
        println!(
            "{:>12} {:>7} {:>12} {:>12} {:>10} {:>14}",
            "network", "nodes", "latency", "mean hops", "queued", "saturated?"
        );
        for (k, n) in networks {
            let cfg = ExperimentConfig::paper_point(k, n, 6, 32, rate)
                .with_routing(routing)
                .with_faults(FaultScenario::RandomNodes { count: 3 })
                .with_seed(7_000 + n as u64)
                .quick(3_000, 500);
            match cfg.run() {
                Ok(out) => println!(
                    "{:>9}-ary {:>1}-cube{:>4} {:>9.1} cyc {:>9.2} hops {:>8} {:>12}",
                    k,
                    n,
                    out.config.num_nodes(),
                    out.report.mean_latency,
                    out.report.mean_hops,
                    out.report.messages_queued,
                    out.hit_max_cycles,
                ),
                Err(e) => println!("{k:>9}-ary {n:>1}-cube  error: {e}"),
            }
        }
    } else {
        println!(
            "(skipping the torus dimensionality table: routing '{}' only runs on open topologies)",
            routing.label()
        );
    }

    // ---- axis 2: topology family under the same fault region ----
    // A centred 2x2 block fault region (Fig. 5 style, sized to fit even the
    // radix-2 hypercube dimensions) applied identically to a 64-node torus,
    // mesh and hypercube — or to the single shape given with `--topology`.
    // V=4 everywhere: legal on all defaults (the torus needs >= 3 for Duato,
    // the meshes only >= 2).
    println!(
        "\ntopology family — same 2x2 block fault region, {} routing, M=16, V=4\n",
        routing.label()
    );
    println!(
        "{:>16} {:>7} {:>12} {:>12} {:>10} {:>22} {:>7}",
        "topology", "nodes", "latency", "mean hops", "queued", "sat. (simulated)", "probes"
    );
    let specs: Vec<TopologySpec> = match custom {
        Some(spec) => vec![spec],
        None => vec![
            TopologySpec::torus(8, 2),
            TopologySpec::mesh(8, 2),
            TopologySpec::hypercube(6),
        ],
    };
    // A small-budget search: 10 probes of 1,000 measured messages each.
    let search = SaturationSearch {
        max_simulations: 10,
        relative_tolerance: 0.2,
        ..SaturationSearch::default()
    };
    for spec in specs {
        let net = match spec.build() {
            Ok(n) => n,
            Err(e) => {
                println!("{:>16} error: {e}", spec.label());
                continue;
            }
        };
        if let Err(e) = routing.algorithm().supported_on(&net) {
            println!(
                "{:>16} routing '{}' rejected: {e}",
                spec.label(),
                routing.label()
            );
            continue;
        }
        let Some(grid) = net.grid() else {
            println!("{:>16} fault regions are grid-only; skipped", spec.label());
            continue;
        };
        let region = RegionShape::Rect {
            width: 2,
            height: 2,
        };
        let faults = FaultScenario::centered_region(grid, region);
        let cfg = ExperimentConfig::topology_point(spec.clone(), 4, 16, 0.004)
            .with_routing(routing)
            .with_faults(faults)
            .with_seed(2026)
            .quick(2_000, 400);
        let out = match cfg.run() {
            Ok(out) => out,
            Err(e) => {
                println!("{:>16} error: {e}", spec.label());
                continue;
            }
        };
        match estimate_saturation_rate(&cfg.clone().quick(1_000, 200), search) {
            Ok(est) => println!(
                "{:>16} {:>7} {:>9.1} cyc {:>9.2} hops {:>8} {:>22} {:>7}",
                spec.label(),
                out.config.num_nodes(),
                out.report.mean_latency,
                out.report.mean_hops,
                out.report.messages_queued,
                est.display_rate(),
                est.simulations,
            ),
            Err(e) => println!("{:>16} saturation search error: {e}", spec.label()),
        }
    }
    println!();
    println!("the same SW-Based-nD algorithm (Fig. 2 of the paper) handles every shape: the");
    println!("torus's wrap-around links buy shorter routes and a later saturation point, the");
    println!("mesh trades that for a dateline-free VC budget (1 deterministic / 2 adaptive),");
    println!("and the hypercube is simply the radix-2 mesh instance of the same code path.");
}
