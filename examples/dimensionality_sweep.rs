//! The n-dimensional extension at work: run the same Software-Based routing
//! algorithm on 2-, 3- and 4-dimensional tori (the paper's contribution is
//! precisely this extension beyond 2-D) and report latency, hop count and
//! fault-handling statistics for each.
//!
//! ```text
//! cargo run --release --example dimensionality_sweep
//! ```

use swbft::prelude::*;

fn main() {
    // Networks of comparable size in different dimensionalities.
    let networks: [(u16, u32); 3] = [(8, 2), (4, 3), (4, 4)];
    let rate = 0.004;
    println!("Software-Based adaptive routing, M=32, V=6, lambda={rate}, 3 random node faults\n");
    println!(
        "{:>12} {:>7} {:>12} {:>12} {:>10} {:>14}",
        "network", "nodes", "latency", "mean hops", "queued", "saturated?"
    );
    for (k, n) in networks {
        let cfg = ExperimentConfig::paper_point(k, n, 6, 32, rate)
            .with_routing(RoutingChoice::Adaptive)
            .with_faults(FaultScenario::RandomNodes { count: 3 })
            .with_seed(7_000 + n as u64)
            .quick(3_000, 500);
        let out = cfg.run().expect("experiment runs");
        println!(
            "{:>9}-ary {:>1}-cube{:>4} {:>9.1} cyc {:>9.2} hops {:>8} {:>12}",
            k,
            n,
            out.config.num_nodes(),
            out.report.mean_latency,
            out.report.mean_hops,
            out.report.messages_queued,
            out.hit_max_cycles,
        );
    }
    println!();
    println!("the same SW-Based-nD algorithm (Fig. 2 of the paper) handles every");
    println!("dimensionality: messages route over consecutive dimension pairs, are absorbed");
    println!("when they meet a fault, and are re-injected by the message-passing software.");
}
