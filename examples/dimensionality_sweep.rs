//! The multidimensional network layer at work, along two axes:
//!
//! 1. **Dimensionality** — run the same Software-Based routing algorithm on
//!    2-, 3- and 4-dimensional tori (the paper's contribution is precisely
//!    this extension beyond 2-D);
//! 2. **Topology family** — run the *same* experiment (same fault region,
//!    same workload) on a torus, the matching mesh and a hypercube of equal
//!    node count, and compare latency and the saturation estimate. Wrap-around
//!    links halve the average distance, so the torus sustains a higher load
//!    before saturating; the mesh needs fewer virtual channels because no
//!    dateline class exists.
//!
//! The saturation column comes from the simulation-based doubling+bisection
//! search at a deliberately small probe budget. Small budgets are safe now
//! that the search reports honest brackets: a budget exhausted before
//! bracketing shows up as an explicit `>=` bound instead of the midpoint of a
//! fictitious bracket (this example previously fell back to the analytic
//! model for exactly that reason).
//!
//! ```text
//! cargo run --release --example dimensionality_sweep
//! ```

use swbft::core::{estimate_saturation_rate, SaturationSearch};
use swbft::prelude::*;

fn main() {
    // ---- axis 1: dimensionality (tori of comparable size) ----
    let networks: [(u16, u32); 3] = [(8, 2), (4, 3), (4, 4)];
    let rate = 0.004;
    println!("Software-Based adaptive routing, M=32, V=6, lambda={rate}, 3 random node faults\n");
    println!(
        "{:>12} {:>7} {:>12} {:>12} {:>10} {:>14}",
        "network", "nodes", "latency", "mean hops", "queued", "saturated?"
    );
    for (k, n) in networks {
        let cfg = ExperimentConfig::paper_point(k, n, 6, 32, rate)
            .with_routing(RoutingChoice::Adaptive)
            .with_faults(FaultScenario::RandomNodes { count: 3 })
            .with_seed(7_000 + n as u64)
            .quick(3_000, 500);
        let out = cfg.run().expect("experiment runs");
        println!(
            "{:>9}-ary {:>1}-cube{:>4} {:>9.1} cyc {:>9.2} hops {:>8} {:>12}",
            k,
            n,
            out.config.num_nodes(),
            out.report.mean_latency,
            out.report.mean_hops,
            out.report.messages_queued,
            out.hit_max_cycles,
        );
    }

    // ---- axis 2: topology family under the same fault region ----
    // A centred 2x2 block fault region (Fig. 5 style, sized to fit even the
    // radix-2 hypercube dimensions) applied identically to a 64-node torus,
    // mesh and hypercube. V=4 everywhere: legal on all three (the torus
    // needs >= 3 for Duato, the meshes only >= 2).
    println!(
        "\ntorus vs mesh vs hypercube — same 2x2 block fault region, adaptive routing, M=16, V=4\n"
    );
    println!(
        "{:>16} {:>7} {:>12} {:>12} {:>10} {:>22} {:>7}",
        "topology", "nodes", "latency", "mean hops", "queued", "sat. (simulated)", "probes"
    );
    let specs = [
        TopologySpec::torus(8, 2),
        TopologySpec::mesh(8, 2),
        TopologySpec::hypercube(6),
    ];
    // A small-budget search: 10 probes of 1,000 measured messages each.
    let search = SaturationSearch {
        max_simulations: 10,
        relative_tolerance: 0.2,
        ..SaturationSearch::default()
    };
    for spec in specs {
        let net = spec.build().expect("valid topology");
        let region = RegionShape::Rect {
            width: 2,
            height: 2,
        };
        let faults = FaultScenario::centered_region(&net, region);
        let cfg = ExperimentConfig::topology_point(spec.clone(), 4, 16, 0.004)
            .with_routing(RoutingChoice::Adaptive)
            .with_faults(faults)
            .with_seed(2026)
            .quick(2_000, 400);
        let out = cfg.run().expect("experiment runs");
        let est = estimate_saturation_rate(&cfg.clone().quick(1_000, 200), search)
            .expect("saturation search runs");
        println!(
            "{:>16} {:>7} {:>9.1} cyc {:>9.2} hops {:>8} {:>22} {:>7}",
            spec.label(),
            out.config.num_nodes(),
            out.report.mean_latency,
            out.report.mean_hops,
            out.report.messages_queued,
            est.display_rate(),
            est.simulations,
        );
    }
    println!();
    println!("the same SW-Based-nD algorithm (Fig. 2 of the paper) handles every shape: the");
    println!("torus's wrap-around links buy shorter routes and a later saturation point, the");
    println!("mesh trades that for a dateline-free VC budget (1 deterministic / 2 adaptive),");
    println!("and the hypercube is simply the radix-2 mesh instance of the same code path.");
}
