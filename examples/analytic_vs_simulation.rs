//! Cross-check the flit-level simulator against the first-order analytical
//! latency model (the "analytical modeling approach" the paper names as future
//! work): sweep the traffic rate in a fault-free and a faulty 8-ary 2-cube and
//! print the two predictions side by side.
//!
//! ```text
//! cargo run --release --example analytic_vs_simulation
//! ```

use swbft::analytic::{AnalyticConfig, AnalyticModel};
use swbft::prelude::*;

fn main() {
    let (k, n, v, m) = (8u16, 2u32, 6usize, 32u32);
    for nf in [0usize, 5] {
        let model =
            AnalyticModel::new(AnalyticConfig::paper(k, n, v, m, nf)).expect("valid topology");
        println!(
            "\n8-ary 2-cube, V={v}, M={m}, nf={nf}   (analytic saturation estimate: {:.4} msg/node/cycle)",
            model.saturation_rate()
        );
        println!(
            "{:>10} | {:>18} | {:>18} | {:>8}",
            "rate", "simulated latency", "analytic latency", "ratio"
        );
        println!("{}", "-".repeat(64));
        for rate in [0.002, 0.004, 0.006, 0.008] {
            let sim = ExperimentConfig::paper_point(k, n, v, m, rate)
                .with_routing(RoutingChoice::Deterministic)
                .with_faults(if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                })
                .quick(3_000, 500)
                .run()
                .expect("simulation runs");
            let analytic = model.mean_latency(rate);
            match analytic {
                Some(a) => println!(
                    "{:>10.4} | {:>14.1} cyc | {:>14.1} cyc | {:>8.2}",
                    rate,
                    sim.report.mean_latency,
                    a,
                    sim.report.mean_latency / a
                ),
                None => println!(
                    "{:>10.4} | {:>14.1} cyc | {:>18} |",
                    rate, sim.report.mean_latency, "saturated"
                ),
            }
        }
    }
    println!();
    println!("the analytical model captures the low-load offset (distance + serialisation)");
    println!("and the divergence towards saturation; the simulator adds the protocol effects");
    println!("(virtual-channel allocation, wormhole blocking chains, software re-injection)");
    println!("that the first-order model ignores, so its latency sits above the model's.");
}
