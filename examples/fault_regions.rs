//! Fault regions (paper Fig. 1 and Fig. 5): render the convex and concave
//! fault-region shapes, classify them, and compare the latency penalty of a
//! convex (rectangular) region against a concave (U-shaped) region — plus the
//! per-dimension fault-density knob: the same number of faults spread
//! uniformly vs clustered into a slab of planes along one axis.
//!
//! ```text
//! cargo run --release --example fault_regions
//!     [-- --topology mesh:8x2] [-- --routing turnmodel]
//! ```

use swbft::faults::{classify_region, RegionClass, RegionShape};
use swbft::prelude::*;
use swbft::routing::RoutingAlgorithm;
use swbft::topology::TopologySpec;

fn main() {
    let mut topology = TopologySpec::torus(8, 2);
    let mut routing = RoutingChoice::Deterministic;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--topology" => match TopologySpec::parse(&iter.next().unwrap_or_default()) {
                Ok(t) => topology = t,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            "--routing" => match RoutingChoice::parse(&iter.next().unwrap_or_default()) {
                Ok(r) => routing = r,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: fault_regions [--topology <spec>] [--routing <choice>]"
                );
                std::process::exit(2);
            }
        }
    }

    println!("Fault-region shapes used in the paper (Fig. 1 / Fig. 5):\n");
    let shapes: Vec<(RegionShape, &str)> = vec![
        (RegionShape::Bar { length: 5 }, "| (bar)"),
        (RegionShape::DoubleBar { length: 4 }, "|| (double bar)"),
        (RegionShape::paper_rect_20(), "rect (block)"),
        (RegionShape::paper_l_9(), "L"),
        (RegionShape::paper_u_8(), "U"),
        (RegionShape::paper_t_10(), "T"),
        (RegionShape::paper_plus_16(), "+"),
        (
            RegionShape::HShape {
                width: 5,
                height: 5,
            },
            "H",
        ),
    ];
    for (shape, label) in &shapes {
        let class = match classify_region(shape) {
            RegionClass::Convex => "convex",
            RegionClass::Concave => "concave",
        };
        println!("{label}  —  {} faulty nodes, {class}", shape.node_count());
        for line in shape.render_ascii().lines() {
            println!("    {line}");
        }
        println!();
    }

    let net = match topology.build() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("topology error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = routing.algorithm().supported_on(&net) {
        eprintln!(
            "routing '{}' cannot run on {}: {e}",
            routing.label(),
            topology.label()
        );
        std::process::exit(2);
    }
    let Some(grid) = net.grid() else {
        println!(
            "fault regions are defined by grid coordinates; {} has none, \
             so the region comparison is skipped",
            topology.label()
        );
        return;
    };

    // Latency comparison: convex vs concave region of similar size, identical
    // traffic. A region that does not fit the requested topology reports its
    // placement error instead of aborting the example.
    println!(
        "latency penalty, {} routing, {}, M=32, V=10, lambda=0.006:\n",
        routing.label(),
        topology.label()
    );
    for (shape, label) in [
        (
            RegionShape::Rect {
                width: 3,
                height: 3,
            },
            "convex 3x3 block (9 nodes)",
        ),
        (RegionShape::paper_l_9(), "concave L-shape (9 nodes)"),
    ] {
        let cfg = ExperimentConfig::topology_point(topology.clone(), 10, 32, 0.006)
            .with_routing(routing)
            .with_faults(FaultScenario::centered_region(grid, shape))
            .quick(3_000, 500);
        match cfg.run() {
            Ok(out) => println!(
                "  {label:<30} mean latency {:>7.1} cycles, messages queued {:>5}",
                out.report.mean_latency, out.report.messages_queued
            ),
            Err(e) => println!("  {label:<30} error: {e}"),
        }
    }
    println!("\nconcave regions are harder to enter and exit, so their latency (and absorption count) is higher — the paper's Fig. 5 observation.");

    // Per-dimension fault density: the same fault count spread uniformly over
    // the whole network vs clustered into a 2-plane slab along dimension 0 —
    // the knob for studying how each routing scheme reacts when faults
    // concentrate along one axis instead of spreading evenly.
    println!("\nuniform vs axis-clustered random faults, nf=8, same workload:\n");
    let scenarios = [
        (
            FaultScenario::RandomNodes { count: 8 },
            "uniform over the network",
        ),
        (
            FaultScenario::ClusteredNodes {
                count: 8,
                dim: 0,
                plane: 2,
                width: 2,
            },
            "clustered: dim 0, planes 2-3",
        ),
    ];
    for (faults, label) in scenarios {
        let cfg = ExperimentConfig::topology_point(topology.clone(), 10, 32, 0.006)
            .with_routing(routing)
            .with_faults(faults)
            .with_seed(0xC1A5)
            .quick(3_000, 500);
        match cfg.run() {
            Ok(out) => println!(
                "  {label:<30} mean latency {:>7.1} cycles, messages queued {:>5}",
                out.report.mean_latency, out.report.messages_queued
            ),
            Err(e) => println!("  {label:<30} error: {e}"),
        }
    }
}
