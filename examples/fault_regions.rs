//! Fault regions (paper Fig. 1 and Fig. 5): render the convex and concave
//! fault-region shapes, classify them, and compare the latency penalty of a
//! convex (rectangular) region against a concave (U-shaped) region.
//!
//! ```text
//! cargo run --release --example fault_regions
//! ```

use swbft::faults::{classify_region, RegionClass, RegionShape};
use swbft::prelude::*;
use swbft::topology::Network;

fn main() {
    println!("Fault-region shapes used in the paper (Fig. 1 / Fig. 5):\n");
    let shapes: Vec<(RegionShape, &str)> = vec![
        (RegionShape::Bar { length: 5 }, "| (bar)"),
        (RegionShape::DoubleBar { length: 4 }, "|| (double bar)"),
        (RegionShape::paper_rect_20(), "rect (block)"),
        (RegionShape::paper_l_9(), "L"),
        (RegionShape::paper_u_8(), "U"),
        (RegionShape::paper_t_10(), "T"),
        (RegionShape::paper_plus_16(), "+"),
        (
            RegionShape::HShape {
                width: 5,
                height: 5,
            },
            "H",
        ),
    ];
    for (shape, label) in &shapes {
        let class = match classify_region(shape) {
            RegionClass::Convex => "convex",
            RegionClass::Concave => "concave",
        };
        println!("{label}  —  {} faulty nodes, {class}", shape.node_count());
        for line in shape.render_ascii().lines() {
            println!("    {line}");
        }
        println!();
    }

    // Latency comparison: convex vs concave region of similar size, identical
    // traffic, deterministic Software-Based routing.
    println!("latency penalty, deterministic SW-Based routing, 8-ary 2-cube, M=32, V=10, lambda=0.006:\n");
    let torus = Network::torus(8, 2).expect("valid topology");
    for (shape, label) in [
        (
            RegionShape::Rect {
                width: 3,
                height: 3,
            },
            "convex 3x3 block (9 nodes)",
        ),
        (RegionShape::paper_l_9(), "concave L-shape (9 nodes)"),
    ] {
        let cfg = ExperimentConfig::paper_point(8, 2, 10, 32, 0.006)
            .with_routing(RoutingChoice::Deterministic)
            .with_faults(FaultScenario::centered_region(&torus, shape))
            .quick(3_000, 500);
        let out = cfg.run().expect("experiment runs");
        println!(
            "  {label:<30} mean latency {:>7.1} cycles, messages queued {:>5}",
            out.report.mean_latency, out.report.messages_queued
        );
    }
    println!("\nconcave regions are harder to enter and exit, so their latency (and absorption count) is higher — the paper's Fig. 5 observation.");
}
