//! Adaptive vs deterministic Software-Based routing under an increasing
//! number of random node faults (the comparison behind Figs. 6 and 7 of the
//! paper): adaptive routing absorbs far fewer messages and keeps latency and
//! throughput closer to the fault-free baseline.
//!
//! ```text
//! cargo run --release --example adaptive_vs_deterministic
//! ```

use swbft::prelude::*;

fn main() {
    let fault_counts = [0usize, 2, 4, 6, 8];
    let rate = 0.006;
    println!("8-ary 2-cube, M=32, V=6, lambda={rate} messages/node/cycle, 4,000 measured messages per point\n");
    println!("{:>4} | {:>28} | {:>28}", "nf", "deterministic", "adaptive");
    println!(
        "{:>4} | {:>13} {:>14} | {:>13} {:>14}",
        "", "latency", "queued", "latency", "queued"
    );
    println!("{}", "-".repeat(68));

    for &nf in &fault_counts {
        let mut row = format!("{nf:>4} |");
        for routing in RoutingChoice::BOTH {
            let cfg = ExperimentConfig::paper_point(8, 2, 6, 32, rate)
                .with_routing(routing)
                .with_faults(if nf == 0 {
                    FaultScenario::None
                } else {
                    FaultScenario::RandomNodes { count: nf }
                })
                .with_seed(40 + nf as u64)
                .quick(4_000, 500);
            let out = cfg.run().expect("experiment runs");
            row.push_str(&format!(
                " {:>9.1} cyc {:>10} msg |",
                out.report.mean_latency, out.report.messages_queued
            ));
        }
        println!("{}", row.trim_end_matches('|'));
    }

    println!();
    println!("deterministic routing absorbs every message whose e-cube output is faulty,");
    println!("while adaptive routing only absorbs a message when *all* productive outputs are");
    println!("faulty — hence its much lower \"messages queued\" count and latency penalty.");
}
