//! Adaptive vs deterministic Software-Based routing under an increasing
//! number of random node faults (the comparison behind Figs. 6 and 7 of the
//! paper): adaptive routing absorbs far fewer messages and keeps latency and
//! throughput closer to the fault-free baseline.
//!
//! On the matching mesh a third column joins the comparison: negative-first
//! **turn-model** routing, the escape-substrate alternative that only exists
//! on open topologies (wrapped dimensions reject it with a typed error). It
//! runs here at the same V as the others even though both adaptive schemes
//! would be content with V=2 on the mesh. Columns are limited to the routings
//! each shape accepts, so the up*/down* schemes (fat-tree only) never appear.
//!
//! ```text
//! cargo run --release --example adaptive_vs_deterministic
//! ```

use swbft::prelude::*;
use swbft::routing::RoutingAlgorithm;

/// Every routing choice the shape accepts, in `RoutingChoice::ALL` order —
/// the up*/down* columns only appear when the topology is a fat-tree.
fn supported_routings(topology: &TopologySpec) -> Vec<RoutingChoice> {
    let net = topology.build().expect("valid topology");
    RoutingChoice::ALL
        .iter()
        .copied()
        .filter(|r| r.algorithm().supported_on(&net).is_ok())
        .collect()
}

fn run_row(topology: TopologySpec, routings: &[RoutingChoice], nf: usize, rate: f64) -> String {
    let mut row = format!("{nf:>4} |");
    for &routing in routings {
        let cfg = ExperimentConfig::topology_point(topology.clone(), 6, 32, rate)
            .with_routing(routing)
            .with_faults(if nf == 0 {
                FaultScenario::None
            } else {
                FaultScenario::RandomNodes { count: nf }
            })
            .with_seed(40 + nf as u64)
            .quick(4_000, 500);
        let out = cfg.run().expect("experiment runs");
        row.push_str(&format!(
            " {:>9.1} cyc {:>10} msg |",
            out.report.mean_latency, out.report.messages_queued
        ));
    }
    row.trim_end_matches('|').to_string()
}

fn header(routings: &[RoutingChoice]) {
    let mut top = format!("{:>4} |", "nf");
    let mut sub = format!("{:>4} |", "");
    for &routing in routings {
        top.push_str(&format!(" {:>28} |", routing.label()));
        sub.push_str(&format!(" {:>13} {:>14} |", "latency", "queued"));
    }
    println!("{}", top.trim_end_matches('|'));
    println!("{}", sub.trim_end_matches('|'));
    println!("{}", "-".repeat(top.len().saturating_sub(1)));
}

fn main() {
    let fault_counts = [0usize, 2, 4, 6, 8];
    let rate = 0.006;

    println!("8-ary 2-cube (torus), M=32, V=6, lambda={rate} messages/node/cycle, 4,000 measured messages per point\n");
    header(&RoutingChoice::BOTH);
    for &nf in &fault_counts {
        println!(
            "{}",
            run_row(TopologySpec::torus(8, 2), &RoutingChoice::BOTH, nf, rate)
        );
    }

    let mesh_rate = 0.004; // meshes saturate earlier: no wrap-around shortcuts
    let mesh_routings = supported_routings(&TopologySpec::mesh(8, 2));
    println!("\n8-ary 2-mesh, M=32, V=6, lambda={mesh_rate} messages/node/cycle, 4,000 measured messages per point\n");
    header(&mesh_routings);
    for &nf in &fault_counts {
        println!(
            "{}",
            run_row(TopologySpec::mesh(8, 2), &mesh_routings, nf, mesh_rate)
        );
    }

    println!();
    println!("deterministic routing absorbs every message whose e-cube output is faulty,");
    println!("while the adaptive schemes only absorb a message when *all* productive outputs");
    println!("are faulty — hence their much lower \"messages queued\" count and latency");
    println!("penalty. On the mesh the turn model replaces Duato's e-cube escape with the");
    println!("negative-first turn rule (both need 2 VCs there; Duato's 3-VC budget is a");
    println!("torus requirement), at the cost of a phase-restricted adaptive set.");
}
