//! Quickstart: simulate Software-Based fault-tolerant routing on an 8-ary
//! 2-cube with a handful of random node faults and print the resulting
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swbft::prelude::*;

fn main() {
    // An 8x8 torus, 6 virtual channels per physical channel, 32-flit messages,
    // Poisson traffic at 0.006 messages/node/cycle, 5 random node faults.
    let config = ExperimentConfig::paper_point(8, 2, 6, 32, 0.006)
        .with_routing(RoutingChoice::Adaptive)
        .with_faults(FaultScenario::RandomNodes { count: 5 })
        .with_seed(2006)
        .quick(5_000, 1_000);

    println!(
        "running: {} nodes, V={}, M={} flits, lambda={} msg/node/cycle, {} ...",
        config.num_nodes(),
        config.virtual_channels,
        config.message_length,
        config.rate,
        config.routing.label(),
    );

    let outcome = config.run().expect("experiment runs");
    let r = &outcome.report;

    println!();
    println!("faulty nodes           : {}", outcome.fault_count);
    println!("cycles simulated       : {}", r.cycles);
    println!("messages generated     : {}", r.generated_messages);
    println!("messages delivered     : {}", r.delivered_messages);
    println!(
        "mean message latency   : {:.1} cycles (+/- {:.1}, 95% CI)",
        r.mean_latency, r.latency_ci95
    );
    println!(
        "p50 / p99 latency      : {:.0} / {:.0} cycles",
        r.p50_latency, r.p99_latency
    );
    println!("mean hops per message  : {:.2}", r.mean_hops);
    println!(
        "throughput             : {:.5} messages/node/cycle",
        r.throughput
    );
    println!(
        "messages queued        : {} (absorptions due to faults)",
        r.messages_queued
    );
    println!("saturated              : {}", outcome.hit_max_cycles);

    // The Software-Based guarantee: every message reaches its destination even
    // with faulty routers in the network.
    assert_eq!(outcome.dropped_messages, 0);
    println!("\nall generated messages were (or will be) delivered — no message was dropped.");
}
