//! # swbft — Software-Based Fault-Tolerant routing in multi-dimensional networks
//!
//! Umbrella crate re-exporting the whole reproduction of
//! *Safaei et al., "Software-Based Fault-Tolerant Routing Algorithm in
//! Multi-Dimensional Networks", IPDPS 2006*:
//!
//! * [`topology`] — mixed-radix multidimensional networks (torus / mesh /
//!   hypercube / mixed shapes) and their channel structure,
//! * [`faults`] — fault models and fault-region generators,
//! * [`workloads`] — traffic generation (Poisson arrivals, destination patterns),
//! * [`metrics`] — latency/throughput statistics and collectors,
//! * [`routing`] — e-cube, Duato's protocol and the Software-Based
//!   fault-tolerant routing algorithm (2-D and n-D),
//! * [`sim`] — the flit-level wormhole-switched network simulator,
//! * [`analytic`] — a first-order analytical latency model (the paper's
//!   stated future work), used as an independent cross-check of the simulator,
//! * [`core`] — the experiment harness that reproduces the paper's figures,
//! * [`verify`] — the static routing verifier: exact channel-dependency-graph
//!   extraction with cycle witnesses, reachability proofs over the whole
//!   (topology × routing × VC × fault) matrix, and epoch-differential
//!   verification of dynamic fault schedules with per-pair fate
//!   classification.
//!
//! See `examples/quickstart.rs` for a minimal end-to-end simulation.

pub use swbft_core as core;
pub use swbft_verify as verify;
pub use torus_analytic as analytic;
pub use torus_faults as faults;
pub use torus_metrics as metrics;
pub use torus_routing as routing;
pub use torus_sim as sim;
pub use torus_topology as topology;
pub use torus_workloads as workloads;

/// Commonly used items from every sub-crate.
pub mod prelude {
    pub use swbft_core::prelude::*;
    pub use torus_topology::prelude::*;
}
