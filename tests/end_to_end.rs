//! Cross-crate integration tests: topology + faults + routing + simulator +
//! experiment harness working together, checking the qualitative claims of the
//! paper on small, fast configurations.

use swbft::faults::{random_node_faults, FaultSet, RegionShape};
use swbft::prelude::*;
use swbft::routing::cdg::{build_ecube_cdg, build_turn_cdg, TurnRule, VcModel};
use swbft::routing::SwBasedRouting;
use swbft::sim::{SimConfig, Simulation, StopCondition};
use swbft::topology::{Network, TopologySpec};

/// A small, fast experiment configuration shared by several tests.
fn quick(radix: u16, dims: u32, v: usize, rate: f64) -> ExperimentConfig {
    ExperimentConfig::paper_point(radix, dims, v, 16, rate).quick(800, 200)
}

#[test]
fn fault_free_latency_close_to_ideal() {
    // At very low load the mean latency must approach the no-contention bound:
    // roughly (mean hops + message length) cycles.
    let out = quick(8, 2, 4, 0.001).run().expect("runs");
    let ideal = out.report.mean_hops + 16.0;
    assert!(
        out.report.mean_latency < ideal * 1.5 + 10.0,
        "latency {} too far above the ideal {}",
        out.report.mean_latency,
        ideal
    );
    assert_eq!(out.report.messages_queued, 0);
    assert_eq!(out.dropped_messages, 0);
}

#[test]
fn all_messages_delivered_under_faults_deterministic_and_adaptive() {
    for routing in RoutingChoice::BOTH {
        let out = quick(8, 2, 6, 0.003)
            .with_routing(routing)
            .with_faults(FaultScenario::RandomNodes { count: 6 })
            .run()
            .expect("runs");
        assert_eq!(out.dropped_messages, 0, "{routing:?}");
        assert_eq!(out.forced_absorptions, 0, "{routing:?}");
        assert!(!out.hit_max_cycles, "{routing:?} saturated unexpectedly");
        assert!(out.report.measured_messages >= 800);
    }
}

#[test]
fn latency_increases_with_fault_count() {
    let run = |nf: usize| {
        quick(8, 2, 4, 0.006)
            .with_faults(if nf == 0 {
                FaultScenario::None
            } else {
                FaultScenario::RandomNodes { count: nf }
            })
            .with_seed(400)
            .run()
            .expect("runs")
            .report
            .mean_latency
    };
    let healthy = run(0);
    let faulty = run(6);
    assert!(
        faulty > healthy,
        "latency with 6 faults ({faulty}) should exceed the fault-free latency ({healthy})"
    );
}

#[test]
fn concave_region_costs_more_than_convex_region() {
    // Fig. 5's qualitative claim, on equal-sized regions.
    let torus = Network::torus(8, 2).unwrap();
    let run = |shape: RegionShape| {
        ExperimentConfig::paper_point(8, 2, 10, 32, 0.006)
            .with_routing(RoutingChoice::Deterministic)
            .with_faults(FaultScenario::centered_region(&torus, shape))
            .quick(1_500, 300)
            .run()
            .expect("runs")
            .report
    };
    let convex = run(RegionShape::Rect {
        width: 3,
        height: 3,
    });
    let concave = run(RegionShape::paper_l_9());
    assert!(
        concave.messages_queued >= convex.messages_queued,
        "concave region should absorb at least as many messages ({} vs {})",
        concave.messages_queued,
        convex.messages_queued
    );
}

#[test]
fn adaptive_beats_deterministic_under_faults() {
    // Figs. 6 and 7: adaptive SW-Based routing absorbs far fewer messages and
    // achieves at least the throughput of deterministic routing.
    let base = quick(8, 2, 6, 0.008).with_faults(FaultScenario::RandomNodes { count: 6 });
    let det = base
        .clone()
        .with_routing(RoutingChoice::Deterministic)
        .run()
        .expect("runs");
    let ada = base
        .with_routing(RoutingChoice::Adaptive)
        .run()
        .expect("runs");
    assert!(det.report.messages_queued > 0);
    assert!(
        ada.report.messages_queued < det.report.messages_queued,
        "adaptive queued {} vs deterministic {}",
        ada.report.messages_queued,
        det.report.messages_queued
    );
}

#[test]
fn messages_queued_grows_with_fault_count() {
    // Fig. 7's qualitative claim.
    let run = |nf: usize| {
        quick(8, 2, 6, 0.008)
            .with_routing(RoutingChoice::Deterministic)
            .with_faults(FaultScenario::RandomNodes { count: nf })
            .with_seed(77)
            .run()
            .expect("runs")
            .report
            .messages_queued
    };
    let few = run(2);
    let many = run(8);
    assert!(
        many > few,
        "8 faults should absorb more messages ({many}) than 2 faults ({few})"
    );
}

#[test]
fn deadlock_freedom_argument_holds_for_simulated_topologies() {
    // Section 4 of the paper: the channel dependency graph of the
    // deterministic / escape layer is acyclic for the topologies we simulate.
    for (k, n) in [(8u16, 2u32), (4, 3)] {
        let torus = Network::torus(k, n).unwrap();
        let cdg = build_ecube_cdg(&torus, VcModel::DatelineClasses);
        assert!(cdg.is_acyclic(), "{k}-ary {n}-cube CDG must be acyclic");
        let naive = build_ecube_cdg(&torus, VcModel::SingleClass);
        assert!(
            !naive.is_acyclic(),
            "without VC classes the torus CDG has cycles"
        );
    }
}

#[test]
fn turn_model_deadlock_freedom_argument_holds_for_open_topologies() {
    // The turn-model counterpart of the Section 4 argument: the
    // negative-first turn-rule CDG (an over-approximation of every permitted
    // route) is acyclic on the open shapes we simulate, with a single VC —
    // and cyclic on the torus, which is why the choice is rejected there.
    for net in [Network::mesh(8, 2).unwrap(), Network::hypercube(6).unwrap()] {
        let cdg = build_turn_cdg(&net, TurnRule::NegativeFirst);
        assert!(cdg.is_acyclic(), "negative-first CDG must be acyclic");
        let unrestricted = build_turn_cdg(&net, TurnRule::Unrestricted);
        assert!(
            !unrestricted.is_acyclic(),
            "without the turn prohibition the mesh CDG has cycles"
        );
    }
    let torus = Network::torus(8, 2).unwrap();
    assert!(!build_turn_cdg(&torus, TurnRule::NegativeFirst).is_acyclic());
}

#[test]
fn turn_model_experiments_run_end_to_end_on_open_topologies_only() {
    // The full vertical slice: RoutingChoice::TurnModel through
    // ExperimentConfig::run on a mesh and a hypercube, at the reduced VC
    // budget (V=2: one negative-first escape + one adaptive channel).
    for spec in [TopologySpec::mesh(8, 2), TopologySpec::hypercube(6)] {
        let out = ExperimentConfig::topology_point(spec.clone(), 2, 16, 0.003)
            .with_routing(RoutingChoice::TurnModel)
            .with_faults(FaultScenario::RandomNodes { count: 4 })
            .quick(600, 150)
            .run()
            .expect("turn-model experiment runs");
        assert_eq!(out.config.topology, spec);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.forced_absorptions, 0);
        assert!(!out.hit_max_cycles);
        assert!(out.report.messages_queued > 0);
    }
    // Wrapped dimensions reject the choice with a typed error, so the torus
    // baselines are untouched by the new subsystem.
    let err = ExperimentConfig::paper_point(8, 2, 4, 16, 0.003)
        .with_routing(RoutingChoice::TurnModel)
        .quick(300, 100)
        .run()
        .expect_err("turn model must be rejected on the torus");
    let msg = format!("{err}");
    assert!(msg.contains("unsupported on topology 'torus:8x2'"));
    assert!(msg.contains("routing 'Negative-First (adaptive)'"));
}

#[test]
fn direct_simulator_usage_with_link_faults() {
    // Link faults are supported by the fault model even though the paper's
    // experiments only use node faults.
    let torus = Network::torus(4, 2).unwrap();
    let mut faults = FaultSet::new();
    faults.fail_link(
        &torus,
        torus.node_from_digits(&[1, 1]).unwrap(),
        0,
        swbft::topology::Direction::Plus,
    );
    assert!(faults.preserves_connectivity(&torus));
    let mut cfg = SimConfig::paper(4, 2, 4, 8, 0.01);
    cfg.warmup_messages = 100;
    cfg.stop = StopCondition::MeasuredMessages(500);
    let mut sim = Simulation::new(cfg, faults, SwBasedRouting::deterministic()).unwrap();
    let out = sim.run();
    assert!(!out.hit_max_cycles);
    assert_eq!(out.dropped_messages, 0);
    assert!(
        out.report.messages_queued > 0,
        "messages crossing the dead link must be absorbed and re-routed"
    );
}

#[test]
fn four_dimensional_torus_is_supported() {
    // The whole point of the paper: the scheme generalises beyond 2-D.
    let out = quick(3, 4, 4, 0.002)
        .with_routing(RoutingChoice::Adaptive)
        .with_faults(FaultScenario::RandomNodes { count: 4 })
        .run()
        .expect("runs");
    assert_eq!(out.config.num_nodes(), 81);
    assert_eq!(out.dropped_messages, 0);
    assert!(!out.hit_max_cycles);
}

#[test]
fn random_fault_sets_preserve_connectivity_by_construction() {
    let torus = Network::torus(8, 3).unwrap();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(99);
    for nf in [1, 5, 12, 20] {
        let f: FaultSet = random_node_faults(&torus, nf, &mut rng).unwrap();
        assert!(f.preserves_connectivity(&torus));
        assert_eq!(f.num_faulty_nodes(), nf);
    }
}

#[test]
fn reports_render_to_csv_and_text() {
    let out = quick(4, 2, 4, 0.01).run().expect("runs");
    let row = out.report.csv_row();
    assert_eq!(
        row.split(',').count(),
        SimulationReport::csv_header().split(',').count()
    );
    // A figure result built from a single point renders all its sections.
    let fig = FigureResult {
        id: "smoke".into(),
        title: "smoke figure".into(),
        panels: vec![PanelResult {
            title: "panel".into(),
            x_label: "Traffic rate".into(),
            metric: swbft::core::results::Metric::MeanLatency,
            curves: vec![CurveResult {
                label: "M=16, nf=0".into(),
                points: vec![PointResult {
                    x: 0.01,
                    report: out.report.clone(),
                    saturated: false,
                }],
            }],
        }],
        failures: Vec::new(),
    };
    assert!(fig.render_text().contains("M=16, nf=0"));
    assert!(fig.to_csv().lines().count() >= 2);
}

#[test]
fn mesh_experiments_run_end_to_end() {
    // The generalized network layer: the same experiment harness drives a
    // k-ary n-mesh (no wrap-around, one fewer VC class needed).
    for routing in RoutingChoice::BOTH {
        let out = ExperimentConfig::mesh_point(8, 2, 4, 16, 0.003)
            .with_routing(routing)
            .with_faults(FaultScenario::RandomNodes { count: 4 })
            .quick(600, 150)
            .run()
            .expect("mesh experiment runs");
        assert_eq!(out.config.topology, TopologySpec::mesh(8, 2));
        assert_eq!(out.dropped_messages, 0, "{routing:?}");
        assert_eq!(out.forced_absorptions, 0, "{routing:?}");
        assert!(!out.hit_max_cycles, "{routing:?}");
        assert!(out.report.messages_queued > 0, "{routing:?}");
    }
}

#[test]
fn hypercube_experiments_run_end_to_end() {
    let out = ExperimentConfig::hypercube_point(6, 2, 16, 0.003)
        .with_routing(RoutingChoice::Adaptive)
        .with_faults(FaultScenario::RandomNodes { count: 3 })
        .quick(600, 150)
        .run()
        .expect("hypercube experiment runs");
    assert_eq!(out.config.num_nodes(), 64);
    assert_eq!(out.dropped_messages, 0);
    assert_eq!(out.forced_absorptions, 0);
    assert!(!out.hit_max_cycles);
}

#[test]
fn mesh_edge_traffic_is_delivered() {
    // Corner-to-corner traffic on a mesh exercises the absent edge ports.
    let out = ExperimentConfig::mesh_point(4, 2, 1, 8, 0.01)
        .quick(500, 100)
        .run()
        .expect("single-VC mesh runs (no dateline class needed)");
    assert_eq!(out.dropped_messages, 0);
    assert!(!out.hit_max_cycles);
    assert!(out.report.mean_latency >= 8.0);
}

#[test]
fn mixed_radix_experiment_runs_end_to_end() {
    let spec = TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]);
    let out = ExperimentConfig::topology_point(spec.clone(), 4, 16, 0.002)
        .with_faults(FaultScenario::RandomNodes { count: 4 })
        .quick(400, 100)
        .run()
        .expect("mixed-radix experiment runs");
    assert_eq!(out.config.topology, spec);
    assert_eq!(out.config.num_nodes(), 256);
    assert_eq!(out.dropped_messages, 0);
}

#[test]
fn torus_beats_mesh_on_average_latency() {
    // Wrap-around links halve the average distance, so at equal low load the
    // torus must deliver lower mean latency than the matching mesh.
    let base = |spec: TopologySpec| {
        ExperimentConfig::topology_point(spec, 4, 16, 0.002)
            .with_seed(9876)
            .quick(800, 200)
            .run()
            .expect("runs")
            .report
    };
    let torus = base(TopologySpec::torus(8, 2));
    let mesh = base(TopologySpec::mesh(8, 2));
    assert!(
        mesh.mean_hops > torus.mean_hops,
        "mesh hops {} vs torus hops {}",
        mesh.mean_hops,
        torus.mean_hops
    );
    assert!(
        mesh.mean_latency > torus.mean_latency,
        "mesh latency {} vs torus latency {}",
        mesh.mean_latency,
        torus.mean_latency
    );
}
