//! Cross-check between the flit-level simulator and the first-order
//! analytical latency model (`torus-analytic`). The model is deliberately
//! coarse, so the assertions are qualitative: same low-load offset, same
//! ordering with message length / virtual channels / faults, and agreement
//! within a generous factor at light load.

use swbft::analytic::{AnalyticConfig, AnalyticModel};
use swbft::prelude::*;

fn simulate(v: usize, m: u32, nf: usize, rate: f64) -> SimulationReport {
    ExperimentConfig::paper_point(8, 2, v, m, rate)
        .with_routing(RoutingChoice::Deterministic)
        .with_faults(if nf == 0 {
            FaultScenario::None
        } else {
            FaultScenario::RandomNodes { count: nf }
        })
        .with_seed(3111)
        .quick(1_500, 300)
        .run()
        .expect("simulation runs")
        .report
}

fn predict(v: usize, m: u32, nf: usize, rate: f64) -> f64 {
    AnalyticModel::new(AnalyticConfig::paper(8, 2, v, m, nf))
        .expect("valid model")
        .mean_latency(rate)
        .expect("below saturation")
}

#[test]
fn low_load_agreement_within_a_factor_of_two() {
    // At a very light load both the simulator and the model are dominated by
    // the distance + serialisation term, so they must agree closely.
    let sim = simulate(6, 32, 0, 0.001).mean_latency;
    let model = predict(6, 32, 0, 0.001);
    let ratio = sim / model;
    assert!(
        (0.5..2.0).contains(&ratio),
        "simulated {sim:.1} vs analytic {model:.1} (ratio {ratio:.2})"
    );
}

#[test]
fn both_predict_longer_messages_cost_proportionally_more() {
    let sim_ratio = simulate(6, 64, 0, 0.002).mean_latency / simulate(6, 32, 0, 0.002).mean_latency;
    let model_ratio = predict(6, 64, 0, 0.002) / predict(6, 32, 0, 0.002);
    // Doubling the message length roughly doubles the low-load latency in both
    // views (the paper's observation that latency is proportional to length).
    assert!(
        sim_ratio > 1.5 && sim_ratio < 3.5,
        "simulated ratio {sim_ratio}"
    );
    assert!(
        model_ratio > 1.5 && model_ratio < 2.5,
        "analytic ratio {model_ratio}"
    );
}

#[test]
fn both_predict_fault_latency_penalty() {
    let sim_penalty =
        simulate(6, 32, 5, 0.004).mean_latency - simulate(6, 32, 0, 0.004).mean_latency;
    let model_penalty = predict(6, 32, 5, 0.004) - predict(6, 32, 0, 0.004);
    assert!(sim_penalty > 0.0, "simulated penalty {sim_penalty}");
    assert!(model_penalty > 0.0, "analytic penalty {model_penalty}");
}

#[test]
fn model_saturation_estimate_brackets_simulated_saturation() {
    // The analytic saturation rate (which ignores protocol overheads) must be
    // an upper bound on the load the simulator can actually sustain, and the
    // simulator must still be stable at half that estimate.
    let model = AnalyticModel::new(AnalyticConfig::paper(8, 2, 6, 32, 0)).unwrap();
    let sat = model.saturation_rate();
    assert!(sat > 0.02 && sat < 0.05, "saturation estimate {sat}");
    let half = simulate(6, 32, 0, sat / 2.0);
    assert!(
        half.mean_latency < 1_000.0,
        "half-saturation latency {}",
        half.mean_latency
    );
}
