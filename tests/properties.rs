//! Property-based integration tests: for randomly drawn topologies, fault
//! placements and traffic parameters, the Software-Based routing scheme must
//! deliver every message, never trigger the deadlock watchdog, and never
//! drop a message while the healthy subgraph stays connected.

use proptest::prelude::*;
use swbft::faults::FaultSet;
use swbft::routing::{RouteDecision, RoutingAlgorithm, SwBasedRouting};
use swbft::sim::{SimConfig, Simulation, StopCondition};
use swbft::topology::{AnyTopology, NodeId, TopologySpec};

/// Walks a single message from `src` to `dest` through a faulty network using
/// the full software loop (route → absorb → re-route → re-inject), mirroring
/// what the simulator does, and returns the number of absorptions.
/// Panics if the message fails to arrive within a generous hop budget.
fn deliver_one_message(
    net: &AnyTopology,
    faults: &FaultSet,
    algo: &SwBasedRouting,
    src: NodeId,
    dest: NodeId,
) -> u32 {
    let mut header = algo.make_header(net, src, dest);
    let mut current = src;
    let mut steps = 0usize;
    let budget = net.num_nodes() * 16 + 64;
    loop {
        steps += 1;
        assert!(
            steps < budget,
            "message from {src:?} to {dest:?} did not arrive within {budget} steps"
        );
        match algo.route(net, faults, &mut header, current, 6) {
            RouteDecision::Deliver => {
                assert_eq!(current, dest);
                return header.absorptions;
            }
            RouteDecision::Forward(cands) => {
                let c = &cands[0];
                algo.note_hop(net, &mut header, current, c.dim, c.dir);
                current = net
                    .neighbor(current, c.dim, c.dir)
                    .expect("forwarded over an existing channel");
                assert!(
                    !faults.is_node_faulty(current),
                    "routing forwarded into a faulty node"
                );
            }
            RouteDecision::Absorb => {
                let grid = net.grid().expect("this property only draws grids");
                let blocked = swbft::routing::ecube::ecube_output(grid, &header, current)
                    .unwrap_or((0, swbft::topology::Direction::Plus));
                assert!(
                    algo.reroute_on_fault(net, faults, &mut header, current, blocked),
                    "software layer failed to re-route in a connected network"
                );
                header.reset_for_injection();
            }
        }
    }
}

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (4u16..=8, Just(2u32)).prop_map(|(k, n)| TopologySpec::torus(k, n)),
        (3u16..=5, Just(3u32)).prop_map(|(k, n)| TopologySpec::torus(k, n)),
        Just(TopologySpec::torus(3, 4)),
        (4u16..=8, Just(2u32)).prop_map(|(k, n)| TopologySpec::mesh(k, n)),
        (3u16..=4, Just(3u32)).prop_map(|(k, n)| TopologySpec::mesh(k, n)),
        (4u32..=6).prop_map(TopologySpec::hypercube),
        Just(TopologySpec::mixed(vec![6, 4, 3], vec![true, false, true])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (source, destination) pair between healthy nodes is deliverable
    /// under random connectivity-preserving fault placements, for both
    /// flavours of the algorithm.
    #[test]
    fn every_message_is_deliverable(
        spec in arb_topology(),
        nf in 0usize..8,
        seed in any::<u64>(),
        adaptive in any::<bool>(),
    ) {
        let net = spec.build().unwrap();
        let nf = nf.min(net.num_nodes() / 8);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        // Random fault placement can fail to preserve connectivity on sparse
        // meshes; retry with fewer faults in that case.
        let faults = (0..=nf)
            .rev()
            .find_map(|n| swbft::faults::random_node_faults(&net, n, &mut rng).ok())
            .expect("nf = 0 always succeeds");
        let algo = if adaptive {
            SwBasedRouting::adaptive()
        } else {
            SwBasedRouting::deterministic()
        };
        // Sample a handful of healthy pairs rather than all N^2.
        let healthy: Vec<NodeId> = faults.healthy_nodes(&net).collect();
        prop_assume!(healthy.len() >= 2);
        for i in 0..healthy.len().min(12) {
            let src = healthy[(i * 7) % healthy.len()];
            let dest = healthy[(i * 13 + 5) % healthy.len()];
            if src != dest {
                deliver_one_message(&net, &faults, &algo, src, dest);
            }
        }
    }

    /// Short full-simulator runs never drop messages, never trigger the stall
    /// watchdog, and account for every generated message.
    #[test]
    fn short_simulations_conserve_messages(
        nf in 0usize..6,
        seed in any::<u64>(),
        adaptive in any::<bool>(),
        mesh in any::<bool>(),
    ) {
        let spec = if mesh {
            TopologySpec::mesh(6, 2)
        } else {
            TopologySpec::torus(6, 2)
        };
        let net = spec.clone().build().unwrap();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let faults = (0..=nf)
            .rev()
            .find_map(|n| swbft::faults::random_node_faults(&net, n, &mut rng).ok())
            .expect("nf = 0 always succeeds");
        let had_faults = faults.num_faulty_nodes() > 0;
        let mut cfg = SimConfig::paper_topology(spec, 4, 8, 0.01);
        cfg.seed = seed;
        cfg.warmup_messages = 50;
        cfg.stop = StopCondition::MeasuredMessages(300);
        cfg.max_cycles = 60_000;
        let algo = if adaptive {
            SwBasedRouting::adaptive()
        } else {
            SwBasedRouting::deterministic()
        };
        let mut sim = Simulation::new(cfg, faults, algo).unwrap();
        let out = sim.run();
        prop_assert_eq!(out.dropped_messages, 0);
        prop_assert_eq!(out.forced_absorptions, 0);
        prop_assert!(!out.hit_max_cycles);
        // Conservation: generated = delivered + still in flight.
        prop_assert_eq!(
            out.report.generated_messages,
            out.report.delivered_messages + out.report.in_flight_messages
        );
        if !had_faults {
            prop_assert_eq!(out.report.messages_queued, 0);
        }
    }

    /// The latency of every delivered message is at least its serialisation
    /// bound (length + hops) and the mean reflects that.
    #[test]
    fn latency_respects_serialisation_bound(seed in any::<u64>()) {
        let mut cfg = SimConfig::paper(4, 2, 4, 12, 0.01);
        cfg.seed = seed;
        cfg.warmup_messages = 0;
        cfg.stop = StopCondition::MeasuredMessages(200);
        let mut sim = Simulation::new(cfg, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        prop_assert!(out.report.mean_latency >= 12.0);
        prop_assert!(out.report.mean_hops >= 1.0);
    }
}
