//! Property-based integration tests: for randomly drawn topologies, fault
//! placements and traffic parameters, the Software-Based routing scheme must
//! deliver every message, never trigger the deadlock watchdog, and never
//! drop a message while the healthy subgraph stays connected.

use proptest::prelude::*;
use swbft::faults::FaultSet;
use swbft::routing::{RouteDecision, RoutingAlgorithm, SwBasedRouting};
use swbft::sim::{SimConfig, Simulation, StopCondition};
use swbft::topology::{NodeId, Torus};

/// Walks a single message from `src` to `dest` through a faulty network using
/// the full software loop (route → absorb → re-route → re-inject), mirroring
/// what the simulator does, and returns the number of absorptions.
/// Panics if the message fails to arrive within a generous hop budget.
fn deliver_one_message(
    torus: &Torus,
    faults: &FaultSet,
    algo: &SwBasedRouting,
    src: NodeId,
    dest: NodeId,
) -> u32 {
    let mut header = algo.make_header(torus, src, dest);
    let mut current = src;
    let mut steps = 0usize;
    let budget = torus.num_nodes() * 16 + 64;
    loop {
        steps += 1;
        assert!(
            steps < budget,
            "message from {src:?} to {dest:?} did not arrive within {budget} steps"
        );
        match algo.route(torus, faults, &mut header, current, 6) {
            RouteDecision::Deliver => {
                assert_eq!(current, dest);
                return header.absorptions;
            }
            RouteDecision::Forward(cands) => {
                let c = &cands[0];
                algo.note_hop(torus, &mut header, current, c.dim, c.dir);
                current = torus.neighbor(current, c.dim, c.dir);
                assert!(
                    !faults.is_node_faulty(current),
                    "routing forwarded into a faulty node"
                );
            }
            RouteDecision::Absorb => {
                let blocked = swbft::routing::ecube::ecube_output(torus, &header, current)
                    .unwrap_or((0, swbft::topology::Direction::Plus));
                assert!(
                    algo.reroute_on_fault(torus, faults, &mut header, current, blocked),
                    "software layer failed to re-route in a connected network"
                );
                header.reset_for_injection();
            }
        }
    }
}

fn arb_topology() -> impl Strategy<Value = (u16, u32)> {
    prop_oneof![
        (4u16..=8, Just(2u32)),
        (3u16..=5, Just(3u32)),
        Just((3u16, 4u32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (source, destination) pair between healthy nodes is deliverable
    /// under random connectivity-preserving fault placements, for both
    /// flavours of the algorithm.
    #[test]
    fn every_message_is_deliverable(
        (k, n) in arb_topology(),
        nf in 0usize..8,
        seed in any::<u64>(),
        adaptive in any::<bool>(),
    ) {
        let torus = Torus::new(k, n).unwrap();
        let nf = nf.min(torus.num_nodes() / 8);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let faults = swbft::faults::random_node_faults(&torus, nf, &mut rng).unwrap();
        let algo = if adaptive {
            SwBasedRouting::adaptive()
        } else {
            SwBasedRouting::deterministic()
        };
        // Sample a handful of healthy pairs rather than all N^2.
        let healthy: Vec<NodeId> = faults.healthy_nodes(&torus).collect();
        prop_assume!(healthy.len() >= 2);
        for i in 0..healthy.len().min(12) {
            let src = healthy[(i * 7) % healthy.len()];
            let dest = healthy[(i * 13 + 5) % healthy.len()];
            if src != dest {
                deliver_one_message(&torus, &faults, &algo, src, dest);
            }
        }
    }

    /// Short full-simulator runs never drop messages, never trigger the stall
    /// watchdog, and account for every generated message.
    #[test]
    fn short_simulations_conserve_messages(
        nf in 0usize..6,
        seed in any::<u64>(),
        adaptive in any::<bool>(),
    ) {
        let torus = Torus::new(6, 2).unwrap();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let faults = swbft::faults::random_node_faults(&torus, nf, &mut rng).unwrap();
        let mut cfg = SimConfig::paper(6, 2, 4, 8, 0.01);
        cfg.seed = seed;
        cfg.warmup_messages = 50;
        cfg.stop = StopCondition::MeasuredMessages(300);
        cfg.max_cycles = 60_000;
        let algo = if adaptive {
            SwBasedRouting::adaptive()
        } else {
            SwBasedRouting::deterministic()
        };
        let mut sim = Simulation::new(cfg, faults, algo).unwrap();
        let out = sim.run();
        prop_assert_eq!(out.dropped_messages, 0);
        prop_assert_eq!(out.forced_absorptions, 0);
        prop_assert!(!out.hit_max_cycles);
        // Conservation: generated = delivered + still in flight.
        prop_assert_eq!(
            out.report.generated_messages,
            out.report.delivered_messages + out.report.in_flight_messages
        );
        if nf == 0 {
            prop_assert_eq!(out.report.messages_queued, 0);
        }
    }

    /// The latency of every delivered message is at least its serialisation
    /// bound (length + hops) and the mean reflects that.
    #[test]
    fn latency_respects_serialisation_bound(seed in any::<u64>()) {
        let mut cfg = SimConfig::paper(4, 2, 4, 12, 0.01);
        cfg.seed = seed;
        cfg.warmup_messages = 0;
        cfg.stop = StopCondition::MeasuredMessages(200);
        let mut sim = Simulation::new(cfg, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        prop_assert!(out.report.mean_latency >= 12.0);
        prop_assert!(out.report.mean_hops >= 1.0);
    }
}
