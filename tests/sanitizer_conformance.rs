//! Runtime-vs-static conformance: both simulation engines run under the
//! sanitizer with the **exact CDG** of the verifier attached, so every
//! observed wait-for dependency (held channel → requested channel) is
//! asserted online to be an edge of the statically extracted graph for the
//! same (topology, routing, VC, fault) case.
//!
//! Two seeded-bug mutation tests close the loop in the other direction: a
//! routing wrapper that skips the via-host absorption, and a routing run
//! against the exact CDG of a *different* turn model, must both be flagged
//! with a concrete `cdg-divergence` report — proving the check can actually
//! catch real protocol violations, not just vacuously pass.

#![cfg(feature = "sanitizer")]

use swbft::faults::{FaultRegion, FaultSet, RegionShape};
use swbft::routing::cdg::DependencyGraph;
use swbft::routing::{
    RouteDecision, RouteHeader, RoutingAlgorithm, RoutingFlavor, RoutingTopologyError,
    SwBasedRouting, TurnModelRouting,
};
use swbft::sim::{ReferenceSimulation, SimConfig, Simulation, StopCondition};
use swbft::topology::{AnyTopology, Direction, NodeId, TopologySpec};
use swbft::verify::{extract_exact_cdg, Granularity};

/// A short, deterministic run: enough traffic to exercise absorption and
/// re-injection around faults, small enough to keep the suite fast.
fn quick(spec: &str, v: usize, rate: f64, seed: u64) -> SimConfig {
    let topology = TopologySpec::parse(spec).expect("valid spec");
    let mut c = SimConfig::paper_topology(topology, v, 8, rate).with_seed(seed);
    c.warmup_messages = 100;
    c.stop = StopCondition::MeasuredMessages(400);
    c.max_cycles = 200_000;
    c
}

/// Extracts the exact per-VC CDG of `algo` for the simulated case. The
/// sanitizer numbers runtime channels with the same `channel_id * v + vc`
/// scheme, so the graph can be consumed as-is.
fn exact_cdg<A: RoutingAlgorithm>(
    config: &SimConfig,
    algo: &A,
    faults: &FaultSet,
) -> DependencyGraph {
    let net = config.topology.build().expect("topology builds");
    extract_exact_cdg(
        &net,
        algo,
        faults,
        config.virtual_channels,
        Granularity::PerVc,
        1 << 20,
    )
    .expect("exact walk fits the budget")
    .graph
}

/// Runs both engines under the sanitizer with `cdg` attached and returns the
/// two sanitizer summaries as (edges_checked, violations-of-kind) extractors
/// via the engines themselves.
fn run_both_with_cdg<A: RoutingAlgorithm + Clone>(
    config: SimConfig,
    faults: FaultSet,
    algo: A,
    cdg: DependencyGraph,
) -> (Simulation<A>, ReferenceSimulation<A>) {
    let mut a = Simulation::new(config.clone(), faults.clone(), algo.clone())
        .expect("valid config for the active engine");
    let mut r =
        ReferenceSimulation::new(config, faults, algo).expect("valid config for the reference");
    a.attach_sanitizer(Some(cdg.clone()));
    r.attach_sanitizer(Some(cdg));
    a.run();
    r.run();
    (a, r)
}

/// Asserts that a run of `algo` conforms to its own exact CDG on both
/// engines: a clean audit, with at least one dependency actually checked.
fn assert_conformant<A: RoutingAlgorithm + Clone>(config: SimConfig, faults: FaultSet, algo: A) {
    let name = algo.name();
    let cdg = exact_cdg(&config, &algo, &faults);
    let (a, r) = run_both_with_cdg(config, faults, algo, cdg);
    for (engine, sanitizer) in [("active", a.sanitizer()), ("reference", r.sanitizer())] {
        let s = sanitizer.expect("sanitizer attached");
        assert!(
            s.edges_checked() > 0,
            "{engine} engine under {name}: no wait-for dependencies were checked"
        );
        assert!(
            s.is_clean(),
            "{engine} engine under {name}: {} violation(s); first: {:?}",
            s.violation_count(),
            s.violations().first()
        );
    }
}

#[test]
fn fault_free_deterministic_conforms_on_torus_and_mesh() {
    for spec in ["torus:4x2", "mesh:4x2"] {
        assert_conformant(
            quick(spec, 2, 0.01, 11),
            FaultSet::new(),
            SwBasedRouting::deterministic(),
        );
    }
}

#[test]
fn node_faulted_deterministic_conforms() {
    // A central faulty node forces absorptions, software re-injection and
    // misrouted via chains — the paths whose dependencies are easiest to get
    // wrong.
    let mut faults = FaultSet::new();
    faults.fail_node(NodeId(5));
    assert_conformant(
        quick("mesh:4x2", 2, 0.01, 12),
        faults,
        SwBasedRouting::deterministic(),
    );
}

#[test]
fn link_faulted_deterministic_conforms() {
    let config = quick("torus:4x2", 2, 0.01, 13);
    let net = config.topology.build().expect("topology builds");
    let mut faults = FaultSet::new();
    faults.fail_link(&net, NodeId(3), 0, Direction::Plus);
    assert!(faults.num_faulty_links() > 0);
    assert_conformant(config, faults, SwBasedRouting::deterministic());
}

#[test]
fn region_faulted_deterministic_conforms() {
    let config = quick("mesh:4x2", 2, 0.01, 14);
    let net = config.topology.build().expect("topology builds");
    let shape = RegionShape::LShape {
        vertical: 2,
        horizontal: 2,
    };
    let grid = net.grid().expect("mesh specs build grids");
    let faults = FaultRegion::in_default_plane(grid, shape, &[1, 1])
        .expect("region placement is valid")
        .to_fault_set(grid)
        .expect("region realises");
    assert!(faults.num_faulty_nodes() == 3);
    assert_conformant(config, faults, SwBasedRouting::deterministic());
}

#[test]
fn north_last_turn_model_conforms_on_meshes() {
    for (spec, seed) in [("mesh:4x2", 15), ("mesh:3x3", 16)] {
        assert_conformant(
            quick(spec, 1, 0.01, seed),
            FaultSet::new(),
            TurnModelRouting::north_last_deterministic(),
        );
    }
}

#[test]
fn adaptive_escape_allocations_conform() {
    // Under the adaptive flavour only escape-channel grabs are tracked (the
    // adaptive layer is allowed arbitrary dependencies by Duato's protocol);
    // those grabs must still stay inside the exact relation's edge set.
    let mut faults = FaultSet::new();
    faults.fail_node(NodeId(3));
    // Congestion high enough that escape channels actually get used.
    let config = quick("torus:4x2", 3, 0.05, 17);
    let algo = SwBasedRouting::adaptive();
    let cdg = exact_cdg(&config, &algo, &faults);
    let (a, r) = run_both_with_cdg(config, faults, algo, cdg);
    for (engine, sanitizer) in [("active", a.sanitizer()), ("reference", r.sanitizer())] {
        let s = sanitizer.expect("sanitizer attached");
        assert!(
            s.is_clean(),
            "{engine} engine (adaptive): {} violation(s); first: {:?}",
            s.violation_count(),
            s.violations().first()
        );
    }
}

/// Seeded bug #1: a wrapper that, at an intermediate via host, retargets the
/// message **in flight** instead of returning the `Absorb` the Software-Based
/// scheme mandates. The worm keeps every channel it holds across the
/// retarget, chaining dependencies (e.g. a high dimension back into a low
/// one) that the correct algorithm's exact CDG — where absorption releases
/// everything — cannot contain.
#[derive(Clone)]
struct SkipViaHostAbsorb(SwBasedRouting);

impl RoutingAlgorithm for SkipViaHostAbsorb {
    fn flavor(&self) -> RoutingFlavor {
        self.0.flavor()
    }

    fn min_virtual_channels(&self, net: &AnyTopology) -> usize {
        self.0.min_virtual_channels(net)
    }

    fn supported_on(&self, net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        self.0.supported_on(net)
    }

    fn deterministic_output(
        &self,
        net: &AnyTopology,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        self.0.deterministic_output(net, header, current)
    }

    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
        self.0.make_header(net, src, dest)
    }

    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        // BUG: pop reached via targets without absorbing.
        while current == header.target() {
            if header.advance_target(current) {
                return RouteDecision::Deliver;
            }
        }
        self.0.route(net, faults, header, current, v)
    }

    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        self.0.note_hop(net, header, from, dim, dir);
    }

    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        self.0.reroute_on_fault(net, faults, header, at, blocked)
    }

    fn name(&self) -> String {
        "skip-via-absorb".to_string()
    }
}

/// Asserts that at least one engine reported a `cdg-divergence` whose detail
/// carries the concrete (cycle, message, held, requested) context.
fn assert_divergence_flagged<A: RoutingAlgorithm + Clone>(
    a: &Simulation<A>,
    r: &ReferenceSimulation<A>,
    what: &str,
) {
    let mut flagged = false;
    for sanitizer in [a.sanitizer(), r.sanitizer()] {
        let s = sanitizer.expect("sanitizer attached");
        if let Some(v) = s.violations().iter().find(|v| v.kind == "cdg-divergence") {
            flagged = true;
            assert!(
                v.detail.contains("not an edge of the exact CDG"),
                "{what}: divergence report missing the edge context: {}",
                v.detail
            );
        }
    }
    assert!(
        flagged,
        "{what}: the sanitizer failed to flag the seeded bug"
    );
}

#[test]
fn skipping_the_via_host_absorb_is_caught_as_cdg_divergence() {
    let correct = SwBasedRouting::deterministic();
    let buggy = SkipViaHostAbsorb(correct);
    let mut faults = FaultSet::new();
    faults.fail_node(NodeId(5));
    let config = quick("mesh:4x2", 2, 0.01, 18);
    // The reference graph is the CORRECT algorithm's exact CDG: the bug does
    // not change which channels exist, only which dependencies the worm may
    // chain through a via host.
    let cdg = exact_cdg(&config, &correct, &faults);
    let (a, r) = run_both_with_cdg(config, faults, buggy, cdg);
    assert_divergence_flagged(&a, &r, "skip-via-absorb");
}

#[test]
fn forbidden_turn_dependency_is_caught_as_cdg_divergence() {
    // Mutation test: run north-last routing while asserting against the
    // negative-first exact CDG. North-last takes positive-then-negative turns
    // that negative-first forbids, so the first such turn held across two
    // channels must be reported as a divergence.
    let config = quick("mesh:4x2", 1, 0.02, 19);
    let faults = FaultSet::new();
    let negative_first = TurnModelRouting::deterministic();
    let cdg = exact_cdg(&config, &negative_first, &faults);
    let (a, r) = run_both_with_cdg(
        config,
        faults,
        TurnModelRouting::north_last_deterministic(),
        cdg,
    );
    assert_divergence_flagged(&a, &r, "forbidden-turn mutation");
}
