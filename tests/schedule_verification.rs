//! End-to-end fault-schedule verification through the umbrella crate: parse
//! a schedule spec, verify it epoch-differentially with the paranoid
//! cross-check, and render the v3 report artefacts.

use swbft::faults::{FaultSchedule, FaultSet};
use swbft::routing::RoutingAlgorithm;
use swbft::topology::TopologySpec;
use swbft::verify::matrix::{matrix_routings, run_matrix, MatrixKind, Verdict, STATE_BUDGET};
use swbft::verify::report::to_json;
use swbft::verify::{verify_schedule, PairFate};

#[test]
fn parsed_schedule_round_trips_and_verifies() {
    let net = TopologySpec::parse("torus:4x2").unwrap().build().unwrap();
    let schedule = FaultSchedule::parse("100:node@4,200:link@2:d0+").unwrap();
    assert_eq!(schedule.spec_string(), "100:node@4,200:link@2:d0+");
    assert_eq!(
        FaultSchedule::parse(&schedule.spec_string()).unwrap(),
        schedule
    );
    schedule.validate(&net).unwrap();

    for (label, algo) in matrix_routings() {
        if algo.supported_on(&net).is_err() {
            continue;
        }
        let v = algo.min_virtual_channels(&net);
        let outcome = verify_schedule(&net, &algo, &schedule, v, STATE_BUDGET, true)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(!outcome.failed(), "{label}: {}", outcome.summary());
        assert_eq!(outcome.epochs.len(), 3, "{label}: epoch 0 + two injections");
        let (rewalked, reused) = outcome.rewalk_totals();
        assert!(rewalked > 0 && reused > 0, "{label}: differential reuse");
        // The single node fault forces software-layer recovery for some
        // pairs under every matrix routing, and never cuts the 4-ary
        // 2-cube.
        let last = outcome.epochs.last().unwrap();
        assert_eq!(last.disconnected, 0, "{label}: torus stays connected");
        assert!(
            outcome.fates[2]
                .iter()
                .all(|f| f.fate != PairFate::Disconnected),
            "{label}"
        );
    }
}

#[test]
fn invalid_schedules_are_rejected_with_typed_errors() {
    let net = TopologySpec::parse("mesh:3x2").unwrap().build().unwrap();
    // Duplicate node fault.
    let dup = FaultSchedule::parse("100:node@4,200:node@4").unwrap();
    assert!(dup.validate(&net).is_err());
    // Node beyond the 9-node mesh.
    let oob = FaultSchedule::parse("100:node@9").unwrap();
    assert!(oob.validate(&net).is_err());
    // Open-mesh edge: node 2 is at the +d0 face, so that link is missing.
    let missing = FaultSchedule::parse("100:link@2:d0+").unwrap();
    assert!(missing.validate(&net).is_err());
    // Cycles must be non-decreasing across the spec.
    assert!(FaultSchedule::parse("200:node@1,100:node@2").is_err());
    // An unknown event shape is a parse error, not a panic.
    assert!(FaultSchedule::parse("100:router@1").is_err());
}

#[test]
fn smoke_matrix_json_carries_schedule_epochs() {
    let report = run_matrix(MatrixKind::Smoke);
    let sched_cases: Vec<_> = report
        .cases
        .iter()
        .filter(|c| c.faults.starts_with("sched@"))
        .collect();
    assert!(!sched_cases.is_empty(), "smoke matrix has schedule cases");
    for c in &sched_cases {
        assert_ne!(c.verdict, Verdict::Failed, "{}: {}", c.faults, c.detail);
        if c.verdict == Verdict::Proved {
            assert!(!c.epochs.is_empty(), "{}: epochs recorded", c.faults);
            assert!(c.epochs.iter().all(|e| e.acyclic));
        }
    }
    let json = to_json(&report);
    assert!(json.contains("\"schema\": \"swbft-verify-v3\""));
    assert!(json.contains("\"faults\": \"sched@mix\""));
    assert!(json.contains("\"reused\": "));
}

#[test]
fn schedule_epochs_materialise_cumulatively() {
    let net = TopologySpec::parse("torus:4x2").unwrap().build().unwrap();
    let schedule = FaultSchedule::parse("50:node@1,50:node@2,300:link@5:d1-").unwrap();
    let epochs = schedule.epochs(&net).unwrap();
    assert_eq!(epochs.len(), 3, "implicit epoch 0 + cycles 50 and 300");
    assert_eq!(epochs[0].cycle, 0);
    assert_eq!(epochs[0].faults.num_faulty_nodes(), 0);
    assert_eq!(epochs[1].cycle, 50);
    assert_eq!(
        epochs[1].new_events.len(),
        2,
        "same-cycle events share an epoch"
    );
    assert_eq!(epochs[1].faults.num_faulty_nodes(), 2);
    assert_eq!(epochs[2].cycle, 300);
    assert_eq!(epochs[2].faults.num_faulty_nodes(), 2);
    assert!(epochs[2].faults.num_faulty_links() > 0);
    // The cumulative sets are supersets of every earlier epoch.
    let earlier: &FaultSet = &epochs[1].faults;
    for node in net.nodes() {
        if earlier.is_node_faulty(node) {
            assert!(epochs[2].faults.is_node_faulty(node));
        }
    }
}
